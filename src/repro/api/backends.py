"""Pluggable execution backends for the :class:`repro.api.Session` facade.

A backend receives **request payloads** — the JSON-shaped dicts produced by
:meth:`repro.api.RunRequest.to_payload` — and yields
:class:`~repro.harness.results.ExperimentResult` objects **in submission
order**.  The facade owns everything else (spec resolution, cache probes and
writes, progress events); backends own only *where and how* the experiment
functions execute:

``inline``
    In the calling process, one request at a time, lazily — the default.
``process-pool``
    Over a ``ProcessPoolExecutor``, via the existing
    :class:`~repro.engine.parallel.ParallelSweepRunner` fan-out primitives;
    all requests are submitted eagerly and results stream back in
    submission order.
``batch``
    Serialized execution: the whole batch is round-tripped through its JSON
    encoding first (proving every request is portable off-process), then
    executed sequentially from the decoded manifest.  This is the queue-shaped
    backend the future sharded/remote executors slot in behind.

Because payloads are plain JSON-able dicts and the worker entry point
(:func:`execute_payload`) resolves experiments through the registry by id,
any payload can be shipped to another process — or, later, another machine —
without pickling closures.
"""

from __future__ import annotations

import os
import time
from typing import Dict, Iterator, Optional, Sequence, Union

from repro.engine.fusion import fusion_scope
from repro.engine.parallel import ParallelSweepRunner
from repro.harness.results import ExperimentResult
from repro.obs import TraceRecorder, get_recorder, use_recorder

__all__ = [
    "ExecutionBackend",
    "InlineBackend",
    "ProcessPoolBackend",
    "BatchBackend",
    "BACKEND_CHOICES",
    "resolve_backend",
    "execute_payload",
    "execute_group_payload",
]


def execute_payload(payload: Dict[str, object], registry=None) -> Dict[str, object]:
    """Run one request payload; the worker entry point of every backend.

    Top-level (hence picklable), resolves the experiment by id through
    ``registry`` (the shipped :data:`~repro.harness.registry.REGISTRY` when
    ``None`` — the only resolvable registry inside a fresh worker process),
    and returns the result as a plain dict so the transport back from a
    worker is pickle-of-JSON-able data, never live objects.
    """
    if registry is None:
        from repro.harness.registry import REGISTRY as registry

    spec = registry[str(payload["experiment_id"])]
    return spec.run(payload.get("parameters", {})).to_dict()


def execute_group_payload(
    payloads: Sequence[Dict[str, object]], registry=None
) -> list:
    """Run one fusion group's payloads in submission order under a shared
    :class:`~repro.engine.fusion.FusionContext` (top-level, picklable — the
    worker entry point of grouped execution).

    Singleton groups skip the context: there is nothing to share, and the
    plain path is what the group would be bit-identical to anyway.
    """
    if len(payloads) <= 1:
        return [execute_payload(payload, registry) for payload in payloads]
    with fusion_scope(points=len(payloads)):
        return [execute_payload(payload, registry) for payload in payloads]


def _result_from(record: Dict[str, object]) -> ExperimentResult:
    return ExperimentResult.from_dict(record)


def _traced_execute_payload(item: Dict[str, object]) -> Dict[str, object]:
    """Worker entry point of the telemetry path (top-level, picklable).

    Runs the payload under a fresh in-process :class:`TraceRecorder` and
    ships the export back next to the result — the worker-side half of the
    cross-process merge contract.  ``queue_wait_seconds`` is the wall time
    between the parent stamping the item at submission and the worker
    starting it (same-host clocks; clamped at zero against skew).
    """
    payload: Dict[str, object] = item["payload"]  # type: ignore[assignment]
    queue_wait = max(0.0, time.time() - float(item["submitted_at"]))
    recorder = TraceRecorder()
    with use_recorder(recorder):
        with recorder.span(
            "backend.worker",
            experiment_id=str(payload.get("experiment_id")),
            pid=os.getpid(),
            queue_wait_seconds=round(queue_wait, 6),
        ):
            record = execute_payload(payload)
    return {
        "record": record,
        "telemetry": recorder.export(),
        "queue_wait_seconds": queue_wait,
    }


def _traced_execute_group(item: Dict[str, object]) -> Dict[str, object]:
    """Grouped counterpart of :func:`_traced_execute_payload`: runs one
    fusion group under a fresh worker recorder (the ``engine.fuse_group``
    span and its hit/miss tallies ride back inside the export)."""
    payloads: Sequence[Dict[str, object]] = item["payloads"]  # type: ignore[assignment]
    queue_wait = max(0.0, time.time() - float(item["submitted_at"]))
    recorder = TraceRecorder()
    with use_recorder(recorder):
        with recorder.span(
            "backend.worker",
            pid=os.getpid(),
            points=len(payloads),
            queue_wait_seconds=round(queue_wait, 6),
        ):
            records = execute_group_payload(payloads)
    return {
        "records": records,
        "telemetry": recorder.export(),
        "queue_wait_seconds": queue_wait,
    }


class ExecutionBackend:
    """Interface: run payloads, yield results in submission order.

    ``registry`` lets a session execute against a custom spec registry; the
    ``process-pool`` backend ignores it because a worker process can only
    resolve ids through the importable global registry.
    """

    name = "abstract"

    def execute(
        self, payloads: Sequence[Dict[str, object]], registry=None
    ) -> Iterator[ExperimentResult]:
        raise NotImplementedError

    def execute_grouped(
        self,
        groups: Sequence[Sequence[Dict[str, object]]],
        registry=None,
    ) -> Iterator[ExperimentResult]:
        """Execute fusion groups, yielding results flattened in group order
        (submission order within each group).

        The base implementation runs each group through :meth:`execute`
        with no shared context — correct for every backend (fusion shares
        work, never randomness), so backends unaware of fusion keep working;
        the inline and process-pool backends override this to install a
        :class:`~repro.engine.fusion.FusionContext` per group.
        """
        for payloads in groups:
            yield from self.execute(payloads, registry)


class InlineBackend(ExecutionBackend):
    """Serial in-process execution (the default)."""

    name = "inline"

    def execute(
        self, payloads: Sequence[Dict[str, object]], registry=None
    ) -> Iterator[ExperimentResult]:
        recorder = get_recorder()
        for payload in payloads:
            with recorder.span(
                "backend.task",
                backend=self.name,
                experiment_id=str(payload.get("experiment_id")),
            ):
                record = execute_payload(payload, registry)
            yield _result_from(record)

    def execute_grouped(
        self,
        groups: Sequence[Sequence[Dict[str, object]]],
        registry=None,
    ) -> Iterator[ExperimentResult]:
        recorder = get_recorder()
        for payloads in groups:
            if len(payloads) <= 1:
                yield from self.execute(payloads, registry)
                continue
            # Eager within the group: the fusion context must not stay
            # installed across yields (a generator's ContextVar writes leak
            # into the consumer between next() calls), so the group runs to
            # completion under the scope and the results stream out after.
            results = []
            with fusion_scope(points=len(payloads), backend=self.name):
                for payload in payloads:
                    with recorder.span(
                        "backend.task",
                        backend=self.name,
                        experiment_id=str(payload.get("experiment_id")),
                    ):
                        record = execute_payload(payload, registry)
                    results.append(_result_from(record))
            yield from results


class ProcessPoolBackend(ExecutionBackend):
    """Fan requests out over worker processes.

    Built on :meth:`ParallelSweepRunner.imap`: submission is eager, results
    stream back in submission order, and a pool is created per batch so the
    backend object itself stays picklable and stateless.
    """

    name = "process-pool"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be positive (or None for one per CPU)")
        self.max_workers = max_workers

    @staticmethod
    def _check_registry(registry) -> None:
        # A registry instance cannot be shipped to the workers — a fresh
        # process resolves payload ids through the importable global registry
        # only.  Running a *custom* registry here would silently execute the
        # wrong runners, so it is rejected up front.
        if registry is not None:
            from repro.harness.registry import REGISTRY

            if registry is not REGISTRY:
                raise ValueError(
                    "the process-pool backend resolves experiment ids through the "
                    "shipped repro.harness.registry.REGISTRY inside its worker "
                    "processes; use the inline or batch backend with a custom registry"
                )

    def execute(
        self, payloads: Sequence[Dict[str, object]], registry=None
    ) -> Iterator[ExperimentResult]:
        self._check_registry(registry)
        runner = ParallelSweepRunner(max_workers=self.max_workers, seed_parameter=None)
        recorder = get_recorder()
        if not recorder.active:
            for record in runner.imap(execute_payload, list(payloads)):
                yield _result_from(record)
            return
        # Telemetry path: each worker runs under its own TraceRecorder and
        # ships the export back with the result; the parent re-attaches it
        # under a per-task span, in submission order, so the merged trace
        # reads like one process (queue wait vs compute split out).
        items = [
            {"payload": payload, "submitted_at": time.time()} for payload in payloads
        ]
        for item, wrapped in zip(items, runner.imap(_traced_execute_payload, items)):
            telemetry: Dict[str, object] = wrapped["telemetry"]  # type: ignore[assignment]
            worker_spans = telemetry.get("spans") or []
            compute = worker_spans[0].get("wall_seconds", 0.0) if worker_spans else 0.0
            with recorder.span(
                "backend.task",
                backend=self.name,
                experiment_id=str(item["payload"].get("experiment_id")),
                queue_wait_seconds=round(float(wrapped["queue_wait_seconds"]), 6),
                compute_seconds=round(float(compute), 6),
            ):
                recorder.merge(telemetry)
            yield _result_from(wrapped["record"])

    def execute_grouped(
        self,
        groups: Sequence[Sequence[Dict[str, object]]],
        registry=None,
    ) -> Iterator[ExperimentResult]:
        """Shard across fusion groups: one worker task per group, fusion
        inside the worker (a shared matrix cannot cross process boundaries),
        results streaming back flattened in group-submission order."""
        self._check_registry(registry)
        runner = ParallelSweepRunner(max_workers=self.max_workers, seed_parameter=None)
        recorder = get_recorder()
        tasks = [list(payloads) for payloads in groups]
        if not recorder.active:
            for records in runner.imap(execute_group_payload, tasks):
                for record in records:
                    yield _result_from(record)
            return
        items = [
            {"payloads": payloads, "submitted_at": time.time()} for payloads in tasks
        ]
        for item, wrapped in zip(items, runner.imap(_traced_execute_group, items)):
            telemetry: Dict[str, object] = wrapped["telemetry"]  # type: ignore[assignment]
            worker_spans = telemetry.get("spans") or []
            compute = worker_spans[0].get("wall_seconds", 0.0) if worker_spans else 0.0
            with recorder.span(
                "backend.task",
                backend=self.name,
                experiment_id=str(item["payloads"][0].get("experiment_id"))
                if item["payloads"]
                else None,
                points=len(item["payloads"]),
                queue_wait_seconds=round(float(wrapped["queue_wait_seconds"]), 6),
                compute_seconds=round(float(compute), 6),
            ):
                recorder.merge(telemetry)
            for record in wrapped["records"]:
                yield _result_from(record)


class BatchBackend(ExecutionBackend):
    """Serialized-batch execution.

    The batch is encoded to a :mod:`repro.api.wire` manifest up front — any
    unserializable request fails loudly at submission, not halfway through a
    shard — and the *decoded* manifest is what actually runs.
    ``last_manifest`` keeps the most recent encoding for inspection and for
    handing off to external queue runners; the experiment service speaks the
    same wire records, so there is one serialization, not two.
    """

    name = "batch"

    def __init__(self) -> None:
        self.last_manifest: Optional[str] = None

    def execute(
        self, payloads: Sequence[Dict[str, object]], registry=None
    ) -> Iterator[ExperimentResult]:
        # Local import: backends is imported by repro.api.session, which the
        # wire module needs for RunRequest — the one deliberate cycle in the
        # package, broken here.
        from repro.api.wire import decode_manifest, encode_manifest

        manifest = encode_manifest(payloads)
        self.last_manifest = manifest
        requests = decode_manifest(manifest)
        recorder = get_recorder()
        for request in requests:
            with recorder.span(
                "backend.task",
                backend=self.name,
                experiment_id=request.experiment_id,
            ):
                record = execute_payload(request.to_payload(), registry)
            yield _result_from(record)


#: Backend names accepted by :func:`resolve_backend` (and the CLI).
BACKEND_CHOICES = ("inline", "process-pool", "batch")


def resolve_backend(
    backend: Union[str, ExecutionBackend, None],
    parallel: Optional[int] = None,
) -> ExecutionBackend:
    """Turn a backend selector into an instance.

    ``None`` picks ``inline`` (or ``process-pool`` when ``parallel`` asks for
    more than one worker); a string names one of :data:`BACKEND_CHOICES`; an
    :class:`ExecutionBackend` instance passes through untouched.
    """
    if isinstance(backend, ExecutionBackend):
        return backend
    if backend is None:
        backend = "process-pool" if parallel is not None and parallel > 1 else "inline"
    if backend == "inline":
        return InlineBackend()
    if backend == "process-pool":
        return ProcessPoolBackend(max_workers=parallel)
    if backend == "batch":
        return BatchBackend()
    raise ValueError(f"unknown backend {backend!r}; expected one of {BACKEND_CHOICES}")
