"""The :class:`Session` facade: one programmatic surface for every run.

A session fixes the cross-cutting run context once — master seed, engine
selection, result cache, execution backend — and then executes single
experiments, selections, and parameter sweeps as declarative
:class:`RunRequest` objects resolved against the spec registry:

>>> from repro.api import Session
>>> session = Session(seed=0, cache=None)
>>> report = session.run("E5", preset="quick")          # doctest: +SKIP
>>> report.result.matches_paper                         # doctest: +SKIP
True

Everything the CLI does goes through this class; external callers get the
exact same behavior (same normalization, same cache keys, same backends) by
constructing a session themselves.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.analysis.sweep import SweepResult, grid_points, merge_point_row
from repro.api.backends import ExecutionBackend, resolve_backend
from repro.engine.cache import ResultCache
from repro.engine.fusion import FusedSweepPlan
from repro.engine.parallel import point_seed
from repro.obs import NULL_RECORDER, Recorder, TraceRecorder, pop_recorder, push_recorder
from repro.harness.registry import (
    PRESET_FULL,
    PRESET_QUICK,
    REGISTRY,
    ExperimentRegistry,
    ExperimentSpec,
)
from repro.harness.results import ExperimentResult

__all__ = [
    "RunRequest",
    "RunReport",
    "ProgressEvent",
    "ProgressCallback",
    "SweepReport",
    "Session",
    "PRESET_FULL",
    "PRESET_QUICK",
    "FUSE_CHOICES",
]

#: The ``Session.sweep(fuse=...)`` settings.
FUSE_CHOICES = ("auto", "on", "off")


@dataclass(frozen=True)
class RunRequest:
    """One fully resolved run: an experiment id plus normalized parameters.

    Instances are produced by :meth:`Session.request` (which applies the
    preset, the overrides, and the session seed/engine through the spec's
    schema); ``parameters`` is therefore always the complete normalized
    mapping, and two requests describing the same logical run compare equal
    and share a cache key.
    """

    experiment_id: str
    parameters: Tuple[Tuple[str, object], ...]
    preset: str = PRESET_FULL

    @classmethod
    def create(
        cls,
        experiment_id: str,
        parameters: Mapping[str, object],
        preset: str = PRESET_FULL,
    ) -> "RunRequest":
        # Sorted by name: two requests describing the same logical run
        # compare equal regardless of construction order, and the wire
        # encoding (repro.api.wire, canonical sorted-keys JSON) round-trips
        # to an *equal* request, not merely an equivalent one.
        frozen = tuple(
            (name, tuple(value) if isinstance(value, list) else value)
            for name, value in sorted(parameters.items(), key=lambda item: item[0])
        )
        return cls(experiment_id=experiment_id, parameters=frozen, preset=preset)

    @property
    def kwargs(self) -> Dict[str, object]:
        """The parameters as the keyword mapping the runner is called with."""
        return {
            name: list(value) if isinstance(value, tuple) else value
            for name, value in self.parameters
        }

    def cache_key(self, registry: Optional[ExperimentRegistry] = None) -> str:
        spec = (registry if registry is not None else REGISTRY)[self.experiment_id]
        return spec.cache_key(self.kwargs)

    def to_payload(self) -> Dict[str, object]:
        """The JSON-shaped form backends transport (see
        :mod:`repro.api.backends`)."""
        return {
            "experiment_id": self.experiment_id,
            "parameters": self.kwargs,
            "preset": self.preset,
        }


@dataclass
class RunReport:
    """The outcome of one request: the result plus its provenance."""

    request: RunRequest
    result: ExperimentResult
    from_cache: bool = False
    cache_path: Optional[Path] = None
    duration_seconds: float = 0.0

    @property
    def experiment_id(self) -> str:
        return self.request.experiment_id

    @property
    def ok(self) -> bool:
        """An affirmative verdict — ``None`` (never judged) is *not* ok."""
        return self.result.matches_paper is True


@dataclass(frozen=True)
class ProgressEvent:
    """One per-request progress notification.

    ``kind`` is ``"start"`` when a request begins executing, ``"cached"``
    when it is served from the result cache, and ``"done"`` when execution
    finished (``report`` is set for ``cached`` and ``done``).
    """

    kind: str
    request: RunRequest
    index: int
    total: int
    report: Optional[RunReport] = None


ProgressCallback = Callable[[ProgressEvent], None]


@dataclass
class SweepReport:
    """The outcome of :meth:`Session.sweep`: per-point reports in grid order
    plus the flat summary table the analysis layer consumes.

    ``plan`` is the :class:`~repro.engine.fusion.FusedSweepPlan` the sweep
    executed under, or ``None`` when it ran point by point."""

    reports: List[RunReport] = field(default_factory=list)
    table: SweepResult = field(default_factory=SweepResult)
    plan: Optional[FusedSweepPlan] = None

    def __len__(self) -> int:
        return len(self.reports)


class Session:
    """A configured run context over the experiment registry.

    Parameters
    ----------
    seed:
        Master seed injected into every request whose spec declares the seed
        contract (unless the request pins its own); ``None`` leaves the
        schema default in place.
    engine:
        Engine selector (``auto``/``exact``/``fast``/``off``) injected into
        every request whose spec declares the engine capability.
    precision:
        CI half-width target injected into every request whose spec declares
        the precision capability (adaptive sequential stopping; the spec's
        trial budget becomes a cap).  ``None`` leaves the schema default
        (0.0, fixed trials) in place.
    confidence:
        Confidence level accompanying ``precision`` (same injection rule).
    cache:
        ``True`` (default) for the standard on-disk result cache, ``None`` or
        ``False`` to disable caching, a path for an explicit cache directory,
        or a :class:`ResultCache` instance.
    backend:
        ``"inline"`` (default), ``"process-pool"``, ``"batch"``, or an
        :class:`ExecutionBackend` instance.
    parallel:
        Worker count for the ``process-pool`` backend; with the default
        backend selector, ``parallel > 1`` implies ``process-pool``.
    registry:
        The spec registry to resolve experiments against (defaults to the
        shipped :data:`~repro.harness.registry.REGISTRY`).
    progress:
        Session-wide progress callback; the ``progress=`` argument of the run
        methods overrides it per call.
    telemetry:
        A :class:`repro.obs.Recorder` installed as the ambient recorder for
        the duration of every run — each request gets a ``session.request``
        root span (cache key, engine mode, backend, cache provenance) with
        the engine/cache/backend spans nested below it.  ``None`` (default)
        keeps the near-zero-overhead null recorder; ``True`` is shorthand
        for a fresh :class:`~repro.obs.TraceRecorder` (reachable afterwards
        as ``session.telemetry``).  Telemetry is observation only: results
        are bit-identical with it on or off.
    """

    def __init__(
        self,
        seed: Optional[int] = None,
        engine: Optional[str] = None,
        cache: Union[bool, None, str, Path, ResultCache] = True,
        backend: Union[str, ExecutionBackend, None] = None,
        parallel: Optional[int] = None,
        registry: Optional[ExperimentRegistry] = None,
        progress: Optional[ProgressCallback] = None,
        precision: Optional[float] = None,
        confidence: Optional[float] = None,
        telemetry: Union[Recorder, bool, None] = None,
    ) -> None:
        self.seed = seed
        self.engine = engine
        self.precision = precision
        self.confidence = confidence
        self.registry = registry if registry is not None else REGISTRY
        self.backend = resolve_backend(backend, parallel)
        self.progress = progress
        if telemetry is True:
            self.telemetry: Recorder = TraceRecorder()
        elif telemetry in (None, False):
            self.telemetry = NULL_RECORDER
        elif isinstance(telemetry, Recorder):
            self.telemetry = telemetry
        else:
            raise TypeError(
                f"telemetry must be a repro.obs.Recorder, True, or None; got {telemetry!r}"
            )
        if isinstance(cache, ResultCache):
            self.cache: Optional[ResultCache] = cache
        elif cache is True:
            self.cache = ResultCache()
        elif cache in (None, False):
            self.cache = None
        else:
            self.cache = ResultCache(Path(cache))

    # ------------------------------------------------------------------ #
    def spec(self, experiment_id: str) -> ExperimentSpec:
        return self.registry[experiment_id]

    def request(
        self,
        experiment_id: str,
        preset: str = PRESET_FULL,
        **overrides: object,
    ) -> RunRequest:
        """Resolve one run against the spec's schema (preset + overrides +
        session seed/engine) into a :class:`RunRequest`."""
        spec = self.spec(experiment_id)
        parameters = spec.resolve(
            preset=preset,
            overrides=overrides,
            seed=self.seed,
            engine=self.engine,
            precision=self.precision,
            confidence=self.confidence,
        )
        return RunRequest.create(spec.id, parameters, preset=preset)

    # ------------------------------------------------------------------ #
    def run_iter(
        self,
        requests: Sequence[RunRequest],
        progress: Optional[ProgressCallback] = None,
    ) -> Iterator[RunReport]:
        """Execute requests, yielding a :class:`RunReport` per request **in
        request order** as each becomes available.

        Cache hits are served immediately; misses go through the session
        backend in one batch.  Fresh results are written back to the cache as
        they arrive, so an interrupted iteration keeps everything already
        yielded.

        The session's telemetry recorder is installed as the ambient
        :mod:`repro.obs` recorder for the duration of the iteration (pushed
        and popped explicitly — a ``with`` held across ``yield`` would leak
        the context into the caller), and every request is wrapped in a
        ``session.request`` root span.
        """
        token = push_recorder(self.telemetry)
        try:
            yield from self._run_iter(requests, progress)
        finally:
            pop_recorder(token)

    def _request_span(self, request: RunRequest, key: Optional[str], **attributes: object):
        return self.telemetry.span(
            "session.request",
            experiment_id=request.experiment_id,
            preset=request.preset,
            cache_key=key,
            engine=request.kwargs.get("engine"),
            backend=self.backend.name,
            **attributes,
        )

    def _run_iter(
        self,
        requests: Sequence[RunRequest],
        progress: Optional[ProgressCallback],
        plan: Optional[FusedSweepPlan] = None,
    ) -> Iterator[RunReport]:
        emit = progress if progress is not None else self.progress
        total = len(requests)

        cached: Dict[int, Tuple[RunReport, str]] = {}
        misses: List[Tuple[int, RunRequest, Optional[str]]] = []
        for index, request in enumerate(requests):
            key = None
            if self.cache is not None:
                key = request.cache_key(self.registry)
                payload = self.cache.get(key)
                if payload is not None:
                    try:
                        result = ExperimentResult.from_dict(payload)
                    except (KeyError, TypeError, ValueError):
                        pass  # foreign/stale payload shape: treat as a miss
                    else:
                        cached[index] = (
                            RunReport(
                                request=request,
                                result=result,
                                from_cache=True,
                                cache_path=self.cache.path_for(key),
                            ),
                            key,
                        )
                        continue
            misses.append((index, request, key))

        if plan is not None:
            yield from self._run_grouped(requests, cached, misses, plan, emit, total)
            return

        executing = self.backend.execute(
            [request.to_payload() for _, request, _ in misses], registry=self.registry
        )
        miss_iterator = iter(misses)
        for index, request in enumerate(requests):
            if index in cached:
                yield self._serve_cached(cached[index], index, total, emit)
                continue
            miss_index, miss_request, key = next(miss_iterator)
            assert miss_index == index
            if emit is not None:
                emit(ProgressEvent("start", request, index, total))
            report = self._execute_miss(executing, request, key, index, total, emit)
            yield report

    def _serve_cached(
        self,
        hit: Tuple[RunReport, str],
        index: int,
        total: int,
        emit: Optional[ProgressCallback],
    ) -> RunReport:
        report, hit_key = hit
        with self._request_span(report.request, hit_key, from_cache=True):
            pass
        if emit is not None:
            emit(ProgressEvent("cached", report.request, index, total, report))
        return report

    def _execute_miss(
        self,
        executing: Iterator[ExperimentResult],
        request: RunRequest,
        key: Optional[str],
        index: int,
        total: int,
        emit: Optional[ProgressCallback],
    ) -> RunReport:
        """Consume one backend result for ``request``: span, cache write
        (before the ``done`` event — the progress contract), report."""
        with self._request_span(request, key, from_cache=False):
            started = time.perf_counter()
            try:
                result = next(executing)
            except StopIteration:
                raise RuntimeError(
                    f"backend {self.backend.name!r} yielded fewer results than "
                    f"requests: nothing left for request {index + 1} of {total} "
                    f"({request.experiment_id})"
                ) from None
            duration = time.perf_counter() - started
            cache_path = None
            if self.cache is not None and key is not None:
                cache_path = self.cache.put(
                    key,
                    result.to_dict(),
                    key_fields={
                        "experiment_id": request.experiment_id,
                        "parameters": request.kwargs,
                        "preset": request.preset,
                    },
                )
        report = RunReport(
            request=request,
            result=result,
            from_cache=False,
            cache_path=cache_path,
            duration_seconds=duration,
        )
        if emit is not None:
            emit(ProgressEvent("done", request, index, total, report))
        return report

    def _run_grouped(
        self,
        requests: Sequence[RunRequest],
        cached: Dict[int, Tuple[RunReport, str]],
        misses: List[Tuple[int, RunRequest, Optional[str]]],
        plan: FusedSweepPlan,
        emit: Optional[ProgressCallback],
        total: int,
    ) -> Iterator[RunReport]:
        """The fused execution path: misses are partitioned into the plan's
        fusion groups, the backend shards across groups (fusing within each),
        and results — which arrive flattened in group order, not request
        order — are buffered just long enough to yield in request order."""
        grouped: Dict[int, List[Tuple[int, RunRequest, Optional[str]]]] = {}
        group_order: List[int] = []
        for entry in misses:
            group = plan.group_of(entry[0])
            if group not in grouped:
                group_order.append(group)
                grouped[group] = []
            grouped[group].append(entry)
        group_lists = [grouped[group] for group in group_order]
        executing = self.backend.execute_grouped(
            [[request.to_payload() for _, request, _ in group] for group in group_lists],
            registry=self.registry,
        )
        arrival_order = iter([entry for group in group_lists for entry in group])
        ready: Dict[int, RunReport] = {}
        for index, request in enumerate(requests):
            if index in cached:
                yield self._serve_cached(cached[index], index, total, emit)
                continue
            while index not in ready:
                try:
                    miss_index, miss_request, key = next(arrival_order)
                except StopIteration:  # pragma: no cover - mirrors _execute_miss
                    raise RuntimeError(
                        f"backend {self.backend.name!r} yielded fewer results "
                        f"than requests during a fused sweep"
                    ) from None
                if emit is not None:
                    emit(ProgressEvent("start", miss_request, miss_index, total))
                ready[miss_index] = self._execute_miss(
                    executing, miss_request, key, miss_index, total, emit
                )
            yield ready.pop(index)

    def run_many(
        self,
        requests: Sequence[RunRequest],
        progress: Optional[ProgressCallback] = None,
    ) -> List[RunReport]:
        """:meth:`run_iter`, fully materialized."""
        return list(self.run_iter(requests, progress=progress))

    def run(
        self,
        experiment_id: str,
        preset: str = PRESET_FULL,
        progress: Optional[ProgressCallback] = None,
        **overrides: object,
    ) -> RunReport:
        """Run a single experiment and return its report."""
        request = self.request(experiment_id, preset=preset, **overrides)
        return self.run_many([request], progress=progress)[0]

    def run_selection(
        self,
        experiment_ids: Sequence[str],
        preset: str = PRESET_FULL,
        progress: Optional[ProgressCallback] = None,
    ) -> List[RunReport]:
        """Run a selection of experiments (ids in any case, or ``"all"``),
        deduplicated, in the requested order."""
        requests = [
            self.request(experiment_id, preset=preset)
            for experiment_id in self.registry.select(experiment_ids)
        ]
        return self.run_many(requests, progress=progress)

    def run_all(
        self,
        preset: str = PRESET_FULL,
        progress: Optional[ProgressCallback] = None,
    ) -> List[RunReport]:
        """Run every registered experiment (``preset="quick"`` is the CI
        smoke configuration)."""
        return self.run_selection(["all"], preset=preset, progress=progress)

    # ------------------------------------------------------------------ #
    def sweep(
        self,
        experiment_id: str,
        grid: Mapping[str, Sequence[object]],
        preset: str = PRESET_FULL,
        progress: Optional[ProgressCallback] = None,
        fuse: str = "auto",
        **fixed: object,
    ) -> SweepReport:
        """A first-class parameter sweep: the Cartesian grid becomes one
        :class:`RunRequest` per point, executed through the session backend.

        Seeding follows the :class:`~repro.engine.parallel.ParallelSweepRunner`
        convention: when the session has a master seed and the spec declares
        the seed contract, each point receives a seed derived from the master
        seed and the point's own parameters — independent of backend, worker
        count, and grid shape.  The returned :class:`SweepReport` carries the
        per-point reports plus a flat :class:`SweepResult` summary table
        (point parameters + verdict/provenance columns) in grid order.

        ``fuse`` selects whole-sweep fusion (:mod:`repro.engine.fusion`):
        points sharing a construction configuration execute against one
        shared trial matrix instead of resampling it per point.  ``"auto"``
        (default) fuses when at least two points share a fusion group,
        ``"on"`` always routes through the plan (unfusible points fall back
        to singleton groups), ``"off"`` runs point by point.  Fusion shares
        work, never randomness: the results are bit-identical across the
        three settings, per-point ``point_seed`` derivation included.
        """
        if fuse not in FUSE_CHOICES:
            raise ValueError(
                f"unknown fuse setting {fuse!r}; expected one of {FUSE_CHOICES}"
            )
        spec = self.spec(experiment_id)
        colliding = sorted(set(grid) & set(fixed))
        if colliding:
            raise ValueError(
                f"sweep grid parameters colliding with fixed overrides: "
                f"{', '.join(colliding)}; pass each parameter through the grid "
                "or the fixed keywords, not both"
            )
        points = grid_points(grid)
        requests = []
        for point in points:
            overrides = dict(fixed)
            overrides.update(point)
            if (
                self.seed is not None
                and spec.accepts_seed
                and "seed" not in overrides
            ):
                overrides["seed"] = point_seed(self.seed, point)
            parameters = spec.resolve(
                preset=preset,
                overrides=overrides,
                engine=self.engine,
                precision=self.precision,
                confidence=self.confidence,
            )
            requests.append(RunRequest.create(spec.id, parameters, preset=preset))

        plan: Optional[FusedSweepPlan] = None
        if fuse != "off":
            plan = FusedSweepPlan.build(spec, requests)
            if fuse == "auto" and not plan.has_fusion:
                plan = None

        token = push_recorder(self.telemetry)
        try:
            if plan is not None:
                with self.telemetry.span(
                    "engine.fuse",
                    experiment_id=spec.id,
                    points=len(requests),
                    groups=len(plan.groups),
                    fused_points=plan.fused_points,
                    backend=self.backend.name,
                ):
                    run_reports = list(self._run_iter(requests, progress, plan=plan))
            else:
                run_reports = list(self._run_iter(requests, progress))
        finally:
            pop_recorder(token)

        report = SweepReport(plan=plan)
        for point, run_report in zip(points, run_reports, strict=True):
            result = run_report.result
            report.reports.append(run_report)
            report.table.rows.append(
                merge_point_row(
                    point,
                    {
                        "verdict": result.verdict,
                        "matches_paper": result.matches_paper,
                        "trials_used": result.trials_used,
                        "ci_low": result.ci_low,
                        "ci_high": result.ci_high,
                        "row_count": len(result.rows),
                        "from_cache": run_report.from_cache,
                    },
                )
            )
        return report

