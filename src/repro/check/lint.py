"""The determinism & invariant linter: ``ast``-based rules over ``src/repro``.

Rule catalog (see DESIGN.md "Static analysis" for the prose version):

``DET001``
    No RNG construction (``np.random.default_rng``, ``np.random.RandomState``,
    stdlib ``random.*``) outside the sanctioned modules.  All execution
    randomness must flow through the tape layer
    (:func:`repro.local.randomness.derive_generator` /
    :class:`~repro.local.randomness.RandomTape`), which is what makes runs
    replayable from ``(seed, salt, identity)`` alone.
``DET002``
    No wall-clock reads (``time.time()``, ``datetime.now/utcnow/today``)
    outside the operational layers.  Wall-clock in compute code is hidden
    input: two runs of the same seed would diverge.
``DET003``
    No iteration over bare ``set`` displays / ``set()``-``frozenset()`` calls
    where the iteration order escapes (comprehensions, ``list``/``tuple``
    conversions, ``str.join``).  Set order depends on ``PYTHONHASHSEED`` for
    strings, so such iteration silently breaks cross-process determinism.
    Membership tests and ``sorted(set(...))`` are fine and not flagged.
``OBS001``
    Every literal signal name passed to ``span(...)``/``counter(...)``/
    ``histogram(...)`` (or constructed directly as ``Span("...")``) must be
    registered in :mod:`repro.obs.taxonomy` — the registry DESIGN.md's
    taxonomy table renders from.  Dynamic names are skipped (nothing to
    check statically).
``ERR001``
    Every :class:`repro.errors.ReproError` subclass reachable by
    :func:`repro.errors.iter_error_classes` declares a **unique** wire code
    (a duplicate would make :func:`~repro.errors.error_class_for_code`
    ambiguous).  This one inspects the live classes, not source text.

The allowlist (:mod:`repro.check.config`) mutes DET001/DET002 for the
modules whose *job* is the flagged construct; every entry carries its
rationale in that file.
"""

from __future__ import annotations

import ast
import inspect
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.check.config import DEFAULT_ALLOWLIST, is_allowlisted
from repro.check.findings import Finding

__all__ = ["LINT_RULES", "lint_source", "lint_tree", "check_error_codes"]

#: The source-level rules this module implements (ERR001 is runtime-level).
LINT_RULES = ("DET001", "DET002", "DET003", "OBS001")

#: RNG-constructor attribute names flagged by DET001.
_RNG_CONSTRUCTORS = {"default_rng", "RandomState"}

#: Signal-emitting method names checked by OBS001.
_SIGNAL_METHODS = ("span", "counter", "histogram")


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for an attribute chain over plain names, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _is_set_expression(node: ast.AST) -> bool:
    """A bare set display, set comprehension, or ``set()``/``frozenset()``
    call — the shapes whose iteration order is hash-dependent."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


class _LintVisitor(ast.NodeVisitor):
    """One pass over one module, collecting findings for the selected
    source-level rules."""

    def __init__(self, relpath: str, rules: Set[str]) -> None:
        self.relpath = relpath
        self.rules = rules
        self.findings: List[Finding] = []

    # ------------------------------------------------------------------ #
    def _report(self, rule: str, node: ast.AST, message: str) -> None:
        if rule in self.rules:
            self.findings.append(
                Finding(
                    path=self.relpath,
                    line=getattr(node, "lineno", 1),
                    rule=rule,
                    message=message,
                )
            )

    # ------------------------------------------------------------------ #
    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if dotted is not None:
            self._check_det001(node, dotted)
            self._check_det002(node, dotted)
            self._check_obs001(node, dotted)
        self._check_det003_call(node)
        self.generic_visit(node)

    # -- DET001 --------------------------------------------------------- #
    def _check_det001(self, node: ast.Call, dotted: str) -> None:
        parts = dotted.split(".")
        if parts[-1] in _RNG_CONSTRUCTORS:
            self._report(
                "DET001",
                node,
                f"constructs an RNG via {dotted}(); execution randomness "
                "must flow through repro.local.randomness "
                "(derive_generator / RandomTape)",
            )
        elif parts[0] == "random" and len(parts) > 1:
            self._report(
                "DET001",
                node,
                f"uses the stdlib global RNG ({dotted}()); execution "
                "randomness must flow through repro.local.randomness",
            )

    # -- DET002 --------------------------------------------------------- #
    def _check_det002(self, node: ast.Call, dotted: str) -> None:
        parts = dotted.split(".")
        if dotted == "time.time":
            self._report(
                "DET002",
                node,
                "reads the wall clock (time.time()); compute code must not "
                "depend on real time",
            )
        elif (
            len(parts) >= 2
            and parts[-1] in ("now", "utcnow", "today")
            and parts[-2] in ("datetime", "date")
        ):
            self._report(
                "DET002",
                node,
                f"reads the wall clock ({dotted}()); compute code must not "
                "depend on real time",
            )

    # -- DET003 --------------------------------------------------------- #
    def _check_det003_call(self, node: ast.Call) -> None:
        # list(set(...)) / tuple({...}) — the set order escapes into an
        # ordered collection.
        if isinstance(node.func, ast.Name) and node.func.id in ("list", "tuple"):
            if len(node.args) == 1 and _is_set_expression(node.args[0]):
                self._report(
                    "DET003",
                    node,
                    f"{node.func.id}() over a set fixes a hash-dependent "
                    "iteration order; sort the set (or use a list/dict) "
                    "instead",
                )
        # ", ".join({...}) — ditto, into a string.
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "join"
            and len(node.args) == 1
            and _is_set_expression(node.args[0])
        ):
            self._report(
                "DET003",
                node,
                "str.join over a set fixes a hash-dependent iteration "
                "order; sort the set first",
            )

    def _visit_comprehension(self, node: ast.AST) -> None:
        for generator in getattr(node, "generators", ()):
            if _is_set_expression(generator.iter):
                self._report(
                    "DET003",
                    generator.iter,
                    "comprehension iterates a bare set; the produced "
                    "collection inherits a hash-dependent order — sort the "
                    "set (or iterate the original sequence)",
                )
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    # -- OBS001 --------------------------------------------------------- #
    def _check_obs001(self, node: ast.Call, dotted: str) -> None:
        parts = dotted.split(".")
        kind: Optional[str] = None
        if parts[-1] in _SIGNAL_METHODS and len(parts) > 1:
            kind = parts[-1]
        elif dotted == "Span":
            kind = "span"
        if kind is None or not node.args:
            return
        first = node.args[0]
        if not (isinstance(first, ast.Constant) and isinstance(first.value, str)):
            return  # dynamic name: nothing to verify statically
        from repro.obs.taxonomy import signal_names

        if first.value not in signal_names(kind):
            self._report(
                "OBS001",
                node,
                f"{kind} name {first.value!r} is not registered in "
                "repro.obs.taxonomy; add a Signal entry (and re-render the "
                "DESIGN.md taxonomy block)",
            )


# --------------------------------------------------------------------------- #
# Drivers
# --------------------------------------------------------------------------- #
def lint_source(
    source: str,
    relpath: str,
    select: Optional[Iterable[str]] = None,
    allowlist: Dict[str, Dict[str, str]] = DEFAULT_ALLOWLIST,
) -> List[Finding]:
    """Lint one module's source text.  ``relpath`` is the package-relative
    path used both in findings and for allowlist matching."""
    requested = set(select) if select is not None else set(LINT_RULES)
    active = {
        rule
        for rule in requested.intersection(LINT_RULES)
        if not is_allowlisted(rule, relpath, allowlist)
    }
    if not active:
        return []
    tree = ast.parse(source, filename=relpath)
    visitor = _LintVisitor(relpath, active)
    visitor.visit(tree)
    return visitor.findings


def lint_tree(
    package_root: Path,
    select: Optional[Iterable[str]] = None,
    allowlist: Dict[str, Dict[str, str]] = DEFAULT_ALLOWLIST,
) -> List[Finding]:
    """Lint every ``*.py`` under ``package_root`` (the ``repro`` package
    directory)."""
    findings: List[Finding] = []
    for path in sorted(package_root.rglob("*.py")):
        relpath = path.relative_to(package_root).as_posix()
        findings.extend(
            lint_source(path.read_text(encoding="utf-8"), relpath, select, allowlist)
        )
    return findings


def check_error_codes(package_root: Optional[Path] = None) -> List[Finding]:
    """ERR001: unique wire codes across the live error taxonomy.

    Inspects the classes :func:`repro.errors.iter_error_classes` yields —
    a *runtime* rule, because the taxonomy is assembled by subclass walking,
    not by source text.  Findings anchor at the offending class definition.
    """
    from repro.errors import iter_error_classes

    findings: List[Finding] = []
    by_code: Dict[str, List[type]] = {}
    for cls in iter_error_classes():
        by_code.setdefault(cls.code, []).append(cls)
    for code, classes in sorted(by_code.items()):
        if len(classes) < 2:
            continue
        names = ", ".join(cls.__name__ for cls in classes)
        for cls in classes[1:]:
            path, line = _class_location(cls, package_root)
            findings.append(
                Finding(
                    path=path,
                    line=line,
                    rule="ERR001",
                    message=(
                        f"wire code {code!r} is declared by multiple error "
                        f"classes ({names}); codes must be unique for "
                        "error_class_for_code to round-trip"
                    ),
                )
            )
    return findings


def _class_location(cls: type, package_root: Optional[Path]) -> Tuple[str, int]:
    """Best-effort ``(relpath, line)`` of a class definition."""
    try:
        source_file = inspect.getsourcefile(cls)
        _, line = inspect.getsourcelines(cls)
    except (OSError, TypeError):
        return cls.__module__.replace(".", "/") + ".py", 1
    path = Path(source_file or "")
    if package_root is not None:
        try:
            return path.relative_to(package_root).as_posix(), line
        except ValueError:
            pass
    return path.name, line
