"""Drive every analyzer over the package tree and fold the results into one
:class:`~repro.check.findings.Report` — the engine behind
``python -m repro check``."""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Optional, Tuple

from repro.check.concurrency import CONCURRENCY_RULES, check_concurrency_tree
from repro.check.findings import Report
from repro.check.lint import LINT_RULES, check_error_codes, lint_tree

__all__ = ["ALL_RULES", "run_checks", "default_root"]

#: Every rule ``run_checks`` knows, in catalog order.
ALL_RULES: Tuple[str, ...] = LINT_RULES + ("ERR001",) + CONCURRENCY_RULES


def default_root() -> Path:
    """The installed ``repro`` package directory (the default scan root)."""
    import repro

    return Path(repro.__file__).resolve().parent


def run_checks(
    root: Optional[Path] = None, select: Optional[Iterable[str]] = None
) -> Report:
    """Run the selected rules (default: all) over ``root`` (default: the
    ``repro`` package) and return a finalized report.

    Raises ``ValueError`` for unknown rule ids — a typo in ``--select`` must
    not silently run nothing and report success.
    """
    root = default_root() if root is None else Path(root)
    selected = tuple(ALL_RULES) if select is None else tuple(dict.fromkeys(select))
    unknown = [rule for rule in selected if rule not in ALL_RULES]
    if unknown:
        raise ValueError(
            f"unknown rule(s) {', '.join(sorted(unknown))}; "
            f"known: {', '.join(ALL_RULES)}"
        )
    report = Report(rules=selected)
    lint_selected = [rule for rule in selected if rule in LINT_RULES]
    if lint_selected:
        report.extend(lint_tree(root, select=lint_selected))
    if "ERR001" in selected:
        report.extend(check_error_codes(package_root=root))
    concurrency_selected = [rule for rule in selected if rule in CONCURRENCY_RULES]
    if concurrency_selected:
        report.extend(check_concurrency_tree(root, select=concurrency_selected))
    return report.finalize()
