"""Allowlist policy for the determinism linter.

The allowlist is deliberately *small* and every entry carries its rationale
**in this file** — an entry without a reason does not merge.  Entries are
paths relative to the ``repro`` package root: a trailing ``/`` allowlists a
directory, otherwise exactly one file.  The linter still scans allowlisted
files (other rules apply there unchanged); only the named rule is muted.

Policy, in order of preference when a new finding appears:

1. Fix the code (route randomness through ``derive_generator``, clock
   through an allowlisted layer, register the signal in the taxonomy).
2. If the violation is *the point* of the module — it is the sanctioned
   constructor, or the value measured — add an entry here with the reason.
3. Never allowlist to silence a finding you do not understand.
"""

from __future__ import annotations

from typing import Dict, Mapping

__all__ = ["DEFAULT_ALLOWLIST", "is_allowlisted"]

#: ``{rule id: {path or directory/: rationale}}``.
DEFAULT_ALLOWLIST: Dict[str, Dict[str, str]] = {
    "DET001": {
        "local/randomness.py": (
            "the tape layer itself: RandomTape and derive_generator are the "
            "sanctioned RNG constructors every execution path must go through"
        ),
        "graphs/random_graphs.py": (
            "input-instance sampling, intentionally outside the tape "
            "convention; all three families construct their generator via "
            "the module's _instance_rng helper, whose docstring carries the "
            "full rationale"
        ),
        "local/identifiers.py": (
            "identity-assignment schemes are *inputs* to the system under "
            "test, keyed by the caller's explicit seed; they never replay a "
            "node's private tape"
        ),
        "local/ports.py": (
            "port numberings are instance inputs (same convention as "
            "identifiers.py): seeded by the caller, never tape-derived"
        ),
        "core/order_invariant.py": (
            "the lower-bound search samples identity assignments — "
            "instance-space search randomness, not execution randomness"
        ),
    },
    "DET002": {
        "obs/": (
            "wall-clock readings are what a telemetry layer exists to "
            "record (span start timestamps for cross-process interleaving)"
        ),
        "engine/cache.py": (
            "TTL expiry and LRU recency are defined against file mtimes, "
            "which are epoch timestamps by construction"
        ),
        "api/backends.py": (
            "queue-wait accounting across process boundaries needs a clock "
            "both sides share; monotonic clocks do not cross processes"
        ),
        "service/": (
            "job creation timestamps and journal/disk shapes are service "
            "operational metadata, never inputs to an experiment"
        ),
    },
}


def is_allowlisted(rule: str, relpath: str, allowlist: Mapping[str, Mapping[str, str]]) -> bool:
    """Whether ``relpath`` (package-relative, ``/``-separated) is allowlisted
    for ``rule``."""
    entries = allowlist.get(rule)
    if not entries:
        return False
    for entry in entries:
        if entry.endswith("/"):
            if relpath.startswith(entry):
                return True
        elif relpath == entry:
            return True
    return False
