"""The unified finding/report model shared by every analyzer in
:mod:`repro.check`.

A :class:`Finding` is one rule violation anchored to a file and line; a
:class:`Report` is an ordered collection with the two renderings the CLI
exposes (``--format text`` / ``--format json``).  Findings sort by
``(path, line, rule)`` so reports are deterministic regardless of analyzer
order.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

__all__ = ["Finding", "Report"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation: ``rule`` id, ``path`` (repo-relative when the
    analyzer can make it so), 1-indexed ``line``, human-readable
    ``message``."""

    path: str
    line: int
    rule: str
    message: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


@dataclass
class Report:
    """An ordered, deduplicated set of findings plus the rules that ran."""

    findings: List[Finding] = field(default_factory=list)
    rules: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.findings

    def extend(self, findings: Iterable[Finding]) -> None:
        self.findings.extend(findings)

    def finalize(self) -> "Report":
        """Sort and dedupe in place; returns ``self`` for chaining."""
        self.findings = sorted(set(self.findings))
        return self

    def render_text(self) -> str:
        if not self.findings:
            return f"ok: 0 findings ({len(self.rules)} rules)"
        lines = [finding.render() for finding in self.findings]
        lines.append(f"{len(self.findings)} finding(s)")
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps(
            {
                "ok": self.ok,
                "count": len(self.findings),
                "rules": list(self.rules),
                "findings": [finding.to_dict() for finding in self.findings],
            },
            indent=2,
            sort_keys=True,
        )
