"""repro.check — zero-dependency static verification of the repo's contracts.

The load-bearing guarantees of this codebase — bit-identity of exact mode
with the reference tapes, the tape-only randomness convention, the span
taxonomy, loop-confinement in the asyncio service — are conventions, and
conventions rot.  This package turns them into machine-checked rules:

* :mod:`repro.check.ir` — structural + semantic verification of compiled
  vote programs and output programs (DAG shape, arities, probability
  ranges, draw caps, CSR consistency, closed-form cross-checks).  Runs
  automatically inside ``compile_decision``/``compile_construction`` when
  ``REPRO_CHECK_IR=1`` (on in CI and the test suite, off in hot paths).
* :mod:`repro.check.lint` — an ``ast``-based determinism & invariant
  linter over ``src/repro`` (rules DET001–DET003, OBS001, ERR001) with a
  small, rationale-carrying allowlist (:mod:`repro.check.config`).
* :mod:`repro.check.concurrency` — verifies the ``# guarded-by: <lock>`` /
  ``# loop-confined`` annotation convention on mutable attributes (rules
  CON001–CON003).

``python -m repro check [--format json|text] [--select RULE,...]`` runs the
static analyzers and exits nonzero on any finding; CI gates on it.  See
DESIGN.md "Static analysis" for the rule catalog and the allowlist policy.
"""

from repro.check.findings import Finding, Report
from repro.check.ir import (
    IRVerificationError,
    ir_check_enabled,
    verify_compiled_construction,
    verify_compiled_decision,
    verify_output_program,
    verify_vote_expr,
    verify_vote_program,
)
from repro.check.runner import ALL_RULES, run_checks

__all__ = [
    "Finding",
    "Report",
    "ALL_RULES",
    "run_checks",
    "IRVerificationError",
    "ir_check_enabled",
    "verify_vote_expr",
    "verify_vote_program",
    "verify_output_program",
    "verify_compiled_decision",
    "verify_compiled_construction",
]
