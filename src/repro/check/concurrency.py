"""The concurrency checker: machine-verified ``# guarded-by`` /
``# loop-confined`` annotations.

The service's thread-safety argument is a *confinement* argument, not a
locking one: :class:`~repro.service.jobs.JobManager` mutates all job state
on one asyncio loop, worker threads communicate results back only through
``loop.call_soon_threadsafe``, and the few genuinely shared structures
(:attr:`~repro.engine.cache.ResultCache.stats`) hide behind a lock.  That
argument lives in docstrings — this module makes it checkable.

Annotation convention (on the attribute's *declaration* line — the
``self.x = ...`` in ``__init__``/``__post_init__`` or the dataclass field
line; the comment may sit at the end of the line or on its own line
directly above):

``# guarded-by: <lock>``
    Every later write to the attribute — plain or augmented assignment,
    ``setattr(self.<attr>, ...)``, or assignment through it
    (``self.<attr>.field = ...``) — must sit lexically inside
    ``with self.<lock>:``.  Violations are **CON001**.
``# loop-confined``
    The attribute is only ever written by the owning event-loop thread.
    Statically: no function transitively reachable from a thread entry
    point (a ``threading.Thread(target=...)`` value) may write it —
    **CON002**.  Functions handed to ``call_soon_threadsafe`` run *on* the
    loop (that is the sanctioned thread→loop hand-off), so reachability
    stops there.

**CON003** flags broken annotations themselves: a ``guarded-by`` naming a
lock that is not an attribute of the class, or a ``guarded-by:`` with no
lock name.  ``__init__``/``__post_init__`` are exempt from CON001/CON002 —
construction happens before the object is shared.

The write detection is module-wide by attribute *name* (``job.state = ...``
counts as a write to the annotated ``Job.state`` even though the receiver
is not ``self``): static types are not available, and a name-collision
false positive is a much smaller cost than missing the one write that
corrupts loop state.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.check.findings import Finding

__all__ = ["CONCURRENCY_RULES", "check_concurrency_source", "check_concurrency_tree"]

CONCURRENCY_RULES = ("CON001", "CON002", "CON003")

_GUARDED_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_][A-Za-z0-9_]*)?")
_LOOP_RE = re.compile(r"#\s*loop-confined\b")

#: Methods exempt from write checks: they run during construction, before
#: the object can be shared across threads.
_CONSTRUCTORS = ("__init__", "__post_init__")


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


# --------------------------------------------------------------------------- #
# Annotation harvest (comments are invisible to ast — tokenize sees them)
# --------------------------------------------------------------------------- #
def _comment_annotations(source: str) -> Dict[int, Tuple[str, Optional[str]]]:
    """``{line: ("guard", lock) | ("guard", None) | ("loop", None)}`` for
    every annotation comment (``("guard", None)`` is a malformed
    ``guarded-by`` with no lock name)."""
    annotations: Dict[int, Tuple[str, Optional[str]]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            guarded = _GUARDED_RE.search(token.string)
            if guarded:
                annotations[token.start[0]] = ("guard", guarded.group(1))
            elif _LOOP_RE.search(token.string):
                annotations[token.start[0]] = ("loop", None)
    except tokenize.TokenError:  # pragma: no cover - tolerated, ast will raise
        pass
    return annotations


def _annotation_for(
    node: ast.stmt,
    annotations: Dict[int, Tuple[str, Optional[str]]],
    lines: List[str],
) -> Optional[Tuple[str, Optional[str], int]]:
    """The annotation attached to a statement: on any of its own lines, or
    on pure-comment lines directly above it.  Returns (kind, lock, line)."""
    for line in range(node.lineno, (node.end_lineno or node.lineno) + 1):
        if line in annotations:
            kind, lock = annotations[line]
            return kind, lock, line
    line = node.lineno - 1
    while line >= 1 and line <= len(lines) and lines[line - 1].lstrip().startswith("#"):
        if line in annotations:
            kind, lock = annotations[line]
            return kind, lock, line
        line -= 1
    return None


# --------------------------------------------------------------------------- #
# Module graph
# --------------------------------------------------------------------------- #
class _FuncInfo:
    """One function's slice of the module graph."""

    __slots__ = (
        "node",
        "cls",
        "parent",
        "children",
        "self_calls",
        "name_calls",
        "writes",
        "thread_targets",
    )

    def __init__(self, node: ast.AST, cls: Optional[str], parent: Optional["_FuncInfo"]):
        self.node = node
        self.cls = cls
        self.parent = parent
        self.children: Dict[str, _FuncInfo] = {}
        self.self_calls: Set[str] = set()
        self.name_calls: Set[str] = set()
        #: (attr written, guard-relevant self attr or None, line, locks held)
        self.writes: List[Tuple[str, Optional[str], int, frozenset]] = []
        #: resolved ``threading.Thread(target=...)`` values found in the body
        self.thread_targets: List[Tuple[str, Optional[str], str]] = []


class _ClassInfo:
    __slots__ = ("name", "node", "attrs", "annotated", "methods")

    def __init__(self, name: str, node: ast.ClassDef):
        self.name = name
        self.node = node
        self.attrs: Set[str] = set()  # every self.<attr> assigned anywhere
        #: attr -> (kind, lock, declaration line)
        self.annotated: Dict[str, Tuple[str, Optional[str], int]] = {}
        self.methods: Dict[str, _FuncInfo] = {}


class _GraphBuilder(ast.NodeVisitor):
    """One pass building classes, functions, writes, and entry points."""

    def __init__(
        self,
        annotations: Dict[int, Tuple[str, Optional[str]]],
        lines: List[str],
    ) -> None:
        self.annotations = annotations
        self.lines = lines
        self.classes: Dict[str, _ClassInfo] = {}
        self.module_functions: Dict[str, _FuncInfo] = {}
        self.all_functions: List[_FuncInfo] = []
        self._class_stack: List[_ClassInfo] = []
        self._func_stack: List[_FuncInfo] = []
        self._with_stack: List[List[str]] = [[]]  # per-function lock scopes

    # -- helpers --------------------------------------------------------- #
    @property
    def _cls(self) -> Optional[_ClassInfo]:
        return self._class_stack[-1] if self._class_stack else None

    @property
    def _func(self) -> Optional[_FuncInfo]:
        return self._func_stack[-1] if self._func_stack else None

    def _locks_held(self) -> frozenset:
        return frozenset(self._with_stack[-1])

    # -- scopes ---------------------------------------------------------- #
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        info = _ClassInfo(node.name, node)
        self.classes[node.name] = info
        self._class_stack.append(info)
        for statement in node.body:
            self._harvest_class_field(info, statement)
        self.generic_visit(node)
        self._class_stack.pop()

    def _harvest_class_field(self, info: _ClassInfo, statement: ast.stmt) -> None:
        """Dataclass-style fields: ``name: T = ...`` at class level."""
        target = None
        if isinstance(statement, ast.AnnAssign) and isinstance(statement.target, ast.Name):
            target = statement.target.id
        elif isinstance(statement, ast.Assign) and len(statement.targets) == 1:
            if isinstance(statement.targets[0], ast.Name):
                target = statement.targets[0].id
        if target is None:
            return
        info.attrs.add(target)
        found = _annotation_for(statement, self.annotations, self.lines)
        if found is not None:
            info.annotated[target] = found

    def _visit_function(self, node) -> None:
        cls = self._cls
        parent = self._func
        directly_in_class = cls is not None and node in cls.node.body
        info = _FuncInfo(node, cls.name if cls else None, parent)
        self.all_functions.append(info)
        if parent is not None:
            parent.children[node.name] = info
        elif directly_in_class:
            cls.methods[node.name] = info
        elif cls is None:
            self.module_functions[node.name] = info
        self._func_stack.append(info)
        self._with_stack.append([])  # locks do not cross a def boundary
        self.generic_visit(node)
        self._with_stack.pop()
        self._func_stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def _visit_with(self, node) -> None:
        scope = self._with_stack[-1]
        added = []
        for item in node.items:
            dotted = _dotted(item.context_expr)
            if dotted is not None:
                scope.append(dotted)
                added.append(dotted)
        self.generic_visit(node)
        for dotted in added:
            scope.remove(dotted)

    visit_With = _visit_with
    visit_AsyncWith = _visit_with

    # -- writes ---------------------------------------------------------- #
    def _record_write(self, target: ast.AST, lineno: int) -> None:
        func = self._func
        if func is None:
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._record_write(element, lineno)
            return
        if not isinstance(target, ast.Attribute):
            return
        # ``self.<x>`` / ``obj.<x>`` → write to attribute <x>; additionally
        # ``self.<x>.<y> = ...`` mutates the object behind the guarded
        # attribute <x>.
        guard_attr = None
        if isinstance(target.value, ast.Name) and target.value.id == "self":
            guard_attr = target.attr
        elif (
            isinstance(target.value, ast.Attribute)
            and isinstance(target.value.value, ast.Name)
            and target.value.value.id == "self"
        ):
            guard_attr = target.value.attr
        func.writes.append((target.attr, guard_attr, lineno, self._locks_held()))

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_write(target, node.lineno)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record_write(node.target, node.lineno)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_write(node.target, node.lineno)
        self.generic_visit(node)

    # -- calls ------------------------------------------------------------ #
    def visit_Call(self, node: ast.Call) -> None:
        func = self._func
        dotted = _dotted(node.func)
        if func is not None:
            if isinstance(node.func, ast.Name):
                func.name_calls.add(node.func.id)
                if node.func.id == "setattr" and node.args:
                    self._record_setattr(node)
            elif (
                isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "self"
            ):
                func.self_calls.add(node.func.attr)
            if dotted is not None and dotted.split(".")[-1] == "Thread":
                for keyword in node.keywords:
                    if keyword.arg == "target":
                        self._record_thread_target(keyword.value)
        self.generic_visit(node)

    def _record_setattr(self, node: ast.Call) -> None:
        """``setattr(self.<x>, "field", v)`` mutates the object behind
        ``self.<x>``; ``setattr(obj, "field", v)`` writes ``field``."""
        func = self._func
        obj = node.args[0]
        guard_attr = None
        if (
            isinstance(obj, ast.Attribute)
            and isinstance(obj.value, ast.Name)
            and obj.value.id == "self"
        ):
            guard_attr = obj.attr
        written = None
        if len(node.args) >= 2:
            field = node.args[1]
            if isinstance(field, ast.Constant) and isinstance(field.value, str):
                written = field.value
        if written is not None or guard_attr is not None:
            func.writes.append(
                (written or guard_attr, guard_attr, node.lineno, self._locks_held())
            )

    def _record_thread_target(self, value: ast.AST) -> None:
        func = self._func
        cls = self._cls
        if (
            isinstance(value, ast.Attribute)
            and isinstance(value.value, ast.Name)
            and value.value.id == "self"
            and cls is not None
        ):
            func.thread_targets.append(("method", cls.name, value.attr))
        elif isinstance(value, ast.Name):
            func.thread_targets.append(("local", None, value.id))


# --------------------------------------------------------------------------- #
# Checks
# --------------------------------------------------------------------------- #
def _is_constructor(info: _FuncInfo) -> bool:
    node = info.node
    return isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and (
        node.name in _CONSTRUCTORS
    )


def _harvest_init_annotations(builder: _GraphBuilder) -> None:
    """Attributes declared in ``__init__``/``__post_init__`` bodies."""
    for cls in builder.classes.values():
        for name, method in cls.methods.items():
            for statement in ast.walk(method.node):
                targets: List[ast.AST] = []
                if isinstance(statement, ast.Assign):
                    targets = list(statement.targets)
                elif isinstance(statement, ast.AnnAssign):
                    targets = [statement.target]
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        cls.attrs.add(target.attr)
                        if name in _CONSTRUCTORS and target.attr not in cls.annotated:
                            found = _annotation_for(
                                statement, builder.annotations, builder.lines
                            )
                            if found is not None:
                                cls.annotated[target.attr] = found


def _resolve_local(info: _FuncInfo, name: str, builder: _GraphBuilder) -> Optional[_FuncInfo]:
    scope: Optional[_FuncInfo] = info
    while scope is not None:
        if name in scope.children:
            return scope.children[name]
        scope = scope.parent
    return builder.module_functions.get(name)


def _thread_reachable(builder: _GraphBuilder) -> Set[int]:
    """ids of every :class:`_FuncInfo` reachable from a thread entry point
    via same-class ``self.<m>()`` calls and lexically-resolved bare-name
    calls.  ``call_soon_threadsafe`` arguments are never *called* by the
    thread, only scheduled onto the loop, so plain name-reference does not
    make a function reachable — only an actual call does."""
    seeds: List[_FuncInfo] = []
    for info in builder.all_functions:
        for kind, cls_name, name in info.thread_targets:
            target: Optional[_FuncInfo] = None
            if kind == "method" and cls_name in builder.classes:
                target = builder.classes[cls_name].methods.get(name)
            else:
                target = _resolve_local(info, name, builder)
            if target is not None:
                seeds.append(target)
    reachable: Set[int] = set()
    stack = list(seeds)
    while stack:
        info = stack.pop()
        if id(info) in reachable:
            continue
        reachable.add(id(info))
        for name in info.self_calls:
            if info.cls and info.cls in builder.classes:
                callee = builder.classes[info.cls].methods.get(name)
                if callee is not None:
                    stack.append(callee)
        for name in info.name_calls:
            callee = _resolve_local(info, name, builder)
            if callee is not None:
                stack.append(callee)
    return reachable


def check_concurrency_source(
    source: str, relpath: str, select: Optional[Iterable[str]] = None
) -> List[Finding]:
    """Run CON001–CON003 over one module's source text."""
    rules = set(select) if select is not None else set(CONCURRENCY_RULES)
    rules &= set(CONCURRENCY_RULES)
    if not rules:
        return []
    annotations = _comment_annotations(source)
    builder = _GraphBuilder(annotations, source.splitlines())
    builder.visit(ast.parse(source, filename=relpath))
    _harvest_init_annotations(builder)
    findings: List[Finding] = []

    # CON003: broken annotations.
    for cls in builder.classes.values():
        for attr, (kind, lock, line) in sorted(cls.annotated.items()):
            if kind != "guard":
                continue
            if lock is None:
                if "CON003" in rules:
                    findings.append(
                        Finding(
                            path=relpath,
                            line=line,
                            rule="CON003",
                            message=f"guarded-by annotation on {cls.name}.{attr} "
                            "names no lock",
                        )
                    )
            elif lock not in cls.attrs and "CON003" in rules:
                findings.append(
                    Finding(
                        path=relpath,
                        line=line,
                        rule="CON003",
                        message=f"guarded-by annotation on {cls.name}.{attr} names "
                        f"{lock!r}, which is not an attribute of {cls.name}",
                    )
                )

    # CON001: guarded writes must hold the lock.
    if "CON001" in rules:
        for info in builder.all_functions:
            if info.cls is None or _is_constructor(info):
                continue
            cls = builder.classes.get(info.cls)
            if cls is None:
                continue
            for _written, guard_attr, line, locks in info.writes:
                if guard_attr is None:
                    continue
                annotation = cls.annotated.get(guard_attr)
                if annotation is None or annotation[0] != "guard" or annotation[1] is None:
                    continue
                if f"self.{annotation[1]}" not in locks:
                    findings.append(
                        Finding(
                            path=relpath,
                            line=line,
                            rule="CON001",
                            message=f"write to {cls.name}.{guard_attr} (guarded by "
                            f"{annotation[1]}) outside `with self.{annotation[1]}:`",
                        )
                    )

    # CON002: loop-confined attrs are never written on a worker thread.
    if "CON002" in rules:
        loop_confined: Dict[str, str] = {}
        for cls in builder.classes.values():
            for attr, (kind, _lock, _line) in cls.annotated.items():
                if kind == "loop":
                    loop_confined.setdefault(attr, cls.name)
        if loop_confined:
            reachable = _thread_reachable(builder)
            for info in builder.all_functions:
                if id(info) not in reachable or _is_constructor(info):
                    continue
                for written, _guard_attr, line, _locks in info.writes:
                    if written in loop_confined:
                        findings.append(
                            Finding(
                                path=relpath,
                                line=line,
                                rule="CON002",
                                message=f"write to loop-confined attribute "
                                f"{loop_confined[written]}.{written} from "
                                "thread-reachable function "
                                f"{getattr(info.node, 'name', '?')!r}",
                            )
                        )
    return findings


def check_concurrency_tree(
    package_root: Path, select: Optional[Iterable[str]] = None
) -> List[Finding]:
    """Run the concurrency rules over every ``*.py`` under the package."""
    findings: List[Finding] = []
    for path in sorted(package_root.rglob("*.py")):
        relpath = path.relative_to(package_root).as_posix()
        findings.extend(
            check_concurrency_source(path.read_text(encoding="utf-8"), relpath, select)
        )
    return findings
