"""Structural + semantic verification of the compiled engine IR.

The executor trusts the arrays the compiler hands it — a malformed program
does not crash, it silently computes the wrong distribution.  This module is
the distrustful reader: it re-checks every structural invariant the
compiler's docstrings promise (and the executor's correctness relies on),
and re-derives the semantic claims (``constant``, ``accept_probability``)
from the closed-form recursion.

Checked invariants, vote programs (:func:`verify_vote_program`):

* array shapes agree and stay under ``MAX_PROGRAM_NODES``;
* every edge goes from a higher index to a **strictly lower** one, which is
  the topological-order invariant and hence a proof of acyclicity;
* a node at depth ``d`` only reaches nodes at depth ``>= d + 1`` (each
  program node consumes exactly the draw at its depth — the property exact
  mode's bit-identity stands on);
* thresholds lie in ``[0, 1]``, depths in ``[0, MAX_PROGRAM_DRAWS)``, and
  ``max_draws`` matches the deepest node;
* ``constant`` and ``accept_probability`` agree with the closed-form
  recursions (:func:`repro.engine.compiler._structural_constant` /
  ``_accept_probability``).

Output programs (:func:`verify_output_program`) get the per-opcode arity
checks (``const`` → one code, ``randint`` → one code per integer of
``[low, high]``, ``bernoulli`` → a pair and ``q ∈ [0, 1]``) and the
alphabet-cap check; compiled containers
(:func:`verify_compiled_decision` / :func:`verify_compiled_construction`)
add program-id ranges, probability-table consistency, identity uniqueness,
and CSR ``indptr``/``indices`` consistency.

All failures raise :class:`repro.errors.IRVerificationError`.  The
verifiers run automatically inside ``compile_decision`` /
``compile_construction`` when :func:`ir_check_enabled` (the
``REPRO_CHECK_IR`` environment variable) is on — CI and the test conftest
set it; hot paths leave it unset and pay only one ``os.environ`` lookup.
"""

from __future__ import annotations

import os
from typing import Optional, Set

import numpy as np

from repro.engine.compiler import (
    ACCEPT,
    MAX_PROGRAM_DRAWS,
    MAX_PROGRAM_NODES,
    REJECT,
    AllOf,
    AnyOf,
    Branch,
    Coin,
    CompiledDecision,
    Const,
    Not,
    VoteExpr,
    VoteProgram,
    _accept_probability,
    _structural_constant,
)
from repro.engine.construct import (
    MAX_OUTPUT_VALUES,
    CompiledConstruction,
    OutputProgram,
)
from repro.errors import IRVerificationError

__all__ = [
    "IRVerificationError",
    "ir_check_enabled",
    "verify_vote_expr",
    "verify_vote_program",
    "verify_output_program",
    "verify_compiled_decision",
    "verify_compiled_construction",
]

#: Tolerance for re-derived closed-form probabilities.  The verifier runs the
#: *same* float recursion as the compiler, so agreement is exact in practice;
#: the epsilon only absorbs summation-order differences.
_PROBABILITY_TOLERANCE = 1e-12


def ir_check_enabled() -> bool:
    """Whether compiled programs should be verified automatically
    (``REPRO_CHECK_IR`` set to anything but ``""``/``"0"``)."""
    return os.environ.get("REPRO_CHECK_IR", "") not in ("", "0")


def _fail(message: str, **details: object) -> "IRVerificationError":
    return IRVerificationError(message, **details)


# --------------------------------------------------------------------------- #
# Expression layer
# --------------------------------------------------------------------------- #
def verify_vote_expr(expr: VoteExpr) -> None:
    """Validate a vote expression structurally (types, probability ranges).

    Walks the expression as a DAG (memoized on identity), so shared
    sub-circuits — e.g. ``majority``'s ``(remaining, successes)`` states —
    cost one visit, not exponentially many.
    """
    seen: Set[int] = set()
    stack = [expr]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        if isinstance(node, Const):
            if not isinstance(node.value, bool):
                raise _fail(f"Const value must be bool, got {node.value!r}")
        elif isinstance(node, Coin):
            p = node.p
            if not isinstance(p, float) or not 0.0 <= p <= 1.0:
                raise _fail(f"Coin probability must be a float in [0, 1], got {p!r}")
        elif isinstance(node, Not):
            stack.append(node.operand)
        elif isinstance(node, (AllOf, AnyOf)):
            if not isinstance(node.operands, tuple) or not node.operands:
                raise _fail(
                    f"{type(node).__name__} needs a non-empty operand tuple, "
                    f"got {node.operands!r}"
                )
            stack.extend(node.operands)
        elif isinstance(node, Branch):
            stack.extend((node.condition, node.on_true, node.on_false))
        else:
            raise _fail(f"not a vote expression: {node!r}")
        if len(seen) > 4 * MAX_PROGRAM_NODES:
            raise _fail("vote expression is unreasonably large (or cyclic)")


# --------------------------------------------------------------------------- #
# Lowered vote programs
# --------------------------------------------------------------------------- #
def _verify_edge(program: VoteProgram, source: int, target: int, label: str) -> None:
    if target in (ACCEPT, REJECT):
        return
    if not 0 <= target < program.n_nodes:
        raise _fail(
            f"node {source}: {label} edge targets {target}, outside "
            f"[0, {program.n_nodes}) and not a terminal"
        )
    if target >= source:
        # Edges must strictly decrease the index — the topological-order
        # invariant; a violation is a cycle (or a forward edge the walker
        # would revisit).
        raise _fail(
            f"node {source}: {label} edge targets {target} >= {source}; "
            "edges must go from higher to strictly lower indices"
        )
    if int(program.depths[target]) < int(program.depths[source]) + 1:
        raise _fail(
            f"node {source} (depth {int(program.depths[source])}): {label} "
            f"edge reaches node {target} at depth {int(program.depths[target])}; "
            "successors must sit at least one draw deeper"
        )


def verify_vote_program(program: VoteProgram) -> None:
    """Verify one lowered vote program against the full IR contract."""
    n = program.n_nodes
    for name in ("on_true", "on_false", "depths"):
        length = len(getattr(program, name))
        if length != n:
            raise _fail(f"{name} has {length} entries for {n} thresholds")
    if n > MAX_PROGRAM_NODES:
        raise _fail(f"program has {n} nodes, above the {MAX_PROGRAM_NODES} cap")

    root = int(program.root)
    if root in (ACCEPT, REJECT):
        if n != 0:
            raise _fail(f"terminal root {root} on a program with {n} nodes")
    elif not 0 <= root < n:
        raise _fail(f"root {root} outside [0, {n}) and not a terminal")

    if n:
        thresholds = np.asarray(program.thresholds, dtype=np.float64)
        if not np.all(np.isfinite(thresholds)):
            raise _fail("thresholds contain non-finite values")
        if thresholds.min() < 0.0 or thresholds.max() > 1.0:
            bad = int(np.argmax((thresholds < 0.0) | (thresholds > 1.0)))
            raise _fail(
                f"node {bad}: threshold {float(thresholds[bad])} outside [0, 1]"
            )
        depths = np.asarray(program.depths)
        if depths.min() < 0 or depths.max() >= MAX_PROGRAM_DRAWS:
            bad = int(np.argmax((depths < 0) | (depths >= MAX_PROGRAM_DRAWS)))
            raise _fail(
                f"node {bad}: draw index {int(depths[bad])} outside "
                f"[0, {MAX_PROGRAM_DRAWS})"
            )
        for source in range(n):
            _verify_edge(program, source, int(program.on_true[source]), "on_true")
            _verify_edge(program, source, int(program.on_false[source]), "on_false")

    expected_draws = int(program.depths.max()) + 1 if n else 0
    if int(program.max_draws) != expected_draws:
        raise _fail(
            f"max_draws claims {program.max_draws}, deepest node implies "
            f"{expected_draws}"
        )

    constant = _structural_constant(
        root, program.thresholds, program.on_true, program.on_false
    )
    if constant != program.constant:
        raise _fail(
            f"constant claims {program.constant!r}, structural walk derives "
            f"{constant!r}"
        )
    if constant is True:
        probability = 1.0
    elif constant is False:
        probability = 0.0
    else:
        probability = _accept_probability(
            root, program.thresholds, program.on_true, program.on_false
        )
    if abs(probability - float(program.accept_probability)) > _PROBABILITY_TOLERANCE:
        raise _fail(
            f"accept_probability claims {program.accept_probability}, "
            f"closed-form recursion derives {probability}"
        )


# --------------------------------------------------------------------------- #
# Output programs
# --------------------------------------------------------------------------- #
def verify_output_program(program: OutputProgram, alphabet_size: int) -> None:
    """Verify one lowered output program against an alphabet of
    ``alphabet_size`` interned values."""
    if not 0 < alphabet_size <= MAX_OUTPUT_VALUES:
        raise _fail(
            f"alphabet size {alphabet_size} outside (0, {MAX_OUTPUT_VALUES}]"
        )
    if program.kind == "const":
        if len(program.codes) != 1:
            raise _fail(
                f"const program must hold exactly one code, got {len(program.codes)}"
            )
    elif program.kind == "randint":
        if program.high < program.low:
            raise _fail(f"randint range [{program.low}, {program.high}] is empty")
        expected = program.high - program.low + 1
        if len(program.codes) != expected:
            raise _fail(
                f"randint over [{program.low}, {program.high}] must hold "
                f"{expected} codes, got {len(program.codes)}"
            )
    elif program.kind == "bernoulli":
        if len(program.codes) != 2:
            raise _fail(
                f"bernoulli program must hold a (false, true) code pair, "
                f"got {len(program.codes)}"
            )
        if not 0.0 <= program.q <= 1.0:
            raise _fail(f"bernoulli probability {program.q} outside [0, 1]")
    else:
        raise _fail(f"unknown output-program kind {program.kind!r}")
    for code in program.codes:
        if not isinstance(code, int) or not 0 <= code < alphabet_size:
            raise _fail(
                f"code {code!r} outside the interned alphabet [0, {alphabet_size})"
            )


# --------------------------------------------------------------------------- #
# Compiled containers
# --------------------------------------------------------------------------- #
def _verify_csr(indptr: np.ndarray, indices: np.ndarray, n_nodes: int) -> None:
    if len(indptr) != n_nodes + 1:
        raise _fail(f"indptr has {len(indptr)} entries for {n_nodes} nodes")
    if len(indptr) and int(indptr[0]) != 0:
        raise _fail(f"indptr must start at 0, got {int(indptr[0])}")
    if np.any(np.diff(indptr) < 0):
        raise _fail("indptr must be non-decreasing")
    if len(indptr) and int(indptr[-1]) != len(indices):
        raise _fail(
            f"indptr ends at {int(indptr[-1])} but indices holds "
            f"{len(indices)} entries"
        )
    if len(indices) and (indices.min() < 0 or indices.max() >= n_nodes):
        raise _fail(f"adjacency indices fall outside [0, {n_nodes})")


def _verify_assignment(
    program_ids: np.ndarray, n_programs: int, identities: np.ndarray, n_nodes: int
) -> None:
    if len(program_ids) != n_nodes:
        raise _fail(f"program_ids has {len(program_ids)} entries for {n_nodes} nodes")
    if len(program_ids) and (program_ids.min() < 0 or program_ids.max() >= n_programs):
        raise _fail(f"program_ids fall outside [0, {n_programs})")
    if len(identities) != n_nodes:
        raise _fail(f"identities has {len(identities)} entries for {n_nodes} nodes")
    if len(np.unique(identities)) != n_nodes:
        raise _fail("node identities are not unique")


def verify_compiled_decision(
    compiled: CompiledDecision, csr: Optional[bool] = None
) -> None:
    """Verify a compiled decision end to end.

    ``csr`` controls the adjacency check: ``True`` forces it (materializing
    the CSR if needed), ``False`` skips it, and the default ``None`` checks
    it only when the lazy CSR is already built — the automatic
    ``REPRO_CHECK_IR`` hook runs right after compilation, where forcing the
    adjacency would defeat its laziness (the derandomization loops compile
    once per trial and never read it).
    """
    for program in compiled.programs:
        verify_vote_program(program)
    _verify_assignment(
        compiled.program_ids,
        len(compiled.programs),
        compiled.identities,
        compiled.n_nodes,
    )
    if len(compiled.probabilities) != compiled.n_nodes:
        raise _fail(
            f"probabilities has {len(compiled.probabilities)} entries for "
            f"{compiled.n_nodes} nodes"
        )
    for position in range(compiled.n_nodes):
        claimed = float(compiled.probabilities[position])
        derived = float(compiled.program_of(position).accept_probability)
        if abs(claimed - derived) > _PROBABILITY_TOLERANCE:
            raise _fail(
                f"node {position}: probability table claims {claimed}, its "
                f"program's accept_probability is {derived}"
            )
    if csr is None:
        csr = "_csr" in compiled.__dict__
    if csr:
        _verify_csr(compiled.indptr, compiled.indices, compiled.n_nodes)


def verify_compiled_construction(compiled: CompiledConstruction) -> None:
    """Verify a compiled construction end to end (alphabet, per-program
    arities, assignment)."""
    alphabet_size = len(compiled.values)
    if alphabet_size > MAX_OUTPUT_VALUES:
        raise _fail(
            f"alphabet holds {alphabet_size} values, above the "
            f"{MAX_OUTPUT_VALUES} cap"
        )
    # Interning dedupes by equality (values reached the alphabet through a
    # dict), so every value is hashable and duplicates mean a broken intern.
    if alphabet_size != len(set(compiled.values)):
        raise _fail("interned alphabet holds duplicate values")
    for program in compiled.programs:
        verify_output_program(program, alphabet_size)
    _verify_assignment(
        compiled.program_ids,
        len(compiled.programs),
        compiled.identities,
        compiled.n_nodes,
    )
