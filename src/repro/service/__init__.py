"""A long-running experiment service over :mod:`repro.api`.

Exposes the harness as a deduplicating job server: wire-encoded
RunRequests come in over HTTP (``POST /v1/jobs``), identical in-flight
requests collapse into **one** execution by canonical cache key
(single-flight), results land in the shared on-disk
:mod:`repro.engine.cache`, and progress streams out as Server-Sent
Events using the same ``start``/``cached``/``done`` taxonomy as
:class:`repro.api.Session` progress callbacks (plus ``failed`` for the
error path).  Results are bit-identical to an inline ``Session.run`` at
the same seed — the service executes through the very same
:func:`~repro.api.backends.execute_payload` entry point.

Layers:

* :mod:`repro.service.jobs` — :class:`JobManager`: the asyncio-owned job
  table, single-flight dedup, worker-pool execution, event logs,
  telemetry (``service.queue_wait`` / ``service.execute`` spans).
* :mod:`repro.service.http` — :class:`ExperimentService`: the stdlib
  asyncio HTTP/1.1 + SSE front end, mechanical error mapping through
  :func:`repro.errors.error_payload`; :class:`ServiceThread` for
  in-process hosting; :func:`serve` behind ``python -m repro serve``.

The matching client is :class:`repro.api.Client`.
"""

from repro.service.http import ExperimentService, ServiceThread, serve
from repro.service.jobs import Job, JobManager, JobState

__all__ = [
    "ExperimentService",
    "ServiceThread",
    "serve",
    "Job",
    "JobManager",
    "JobState",
]
