"""The persistent job journal: a write-ahead log for the experiment service.

A crashed or restarted server must not lose accepted work.  Every job
transition the :class:`~repro.service.jobs.JobManager` takes is first
appended here as one JSONL line (a versioned
:func:`~repro.api.wire.encode_journal_record` envelope); on startup the
manager replays the log, re-enqueues jobs that were queued or running at
crash time, serves already-terminal jobs from the result cache, and compacts
the log down to its reduced state.

Durability model
----------------
* **Appends are a single ``write`` of one complete line**, flushed and (by
  default) fsynced, so a crash leaves at most one *torn tail* — a final
  line missing its newline or truncated mid-record.  :meth:`JobJournal.scan`
  detects torn or foreign lines, skips them, and counts them
  (:attr:`JobJournal.skipped`); a torn tail is an expected crash artifact,
  never fatal.
* **Results never live in the journal.**  Terminal ``done`` records point at
  the result cache by the job's canonical cache key; replay of a ``done``
  job whose cache entry was evicted simply re-executes (determinism makes
  re-execution equivalent to recovery — the replayed result is bit-identical
  to the lost one at the same seed).
* **Compaction is an atomic rewrite** (tempfile + ``os.replace``) of the
  reduced state: one ``submit`` line per live job plus the minimal extra
  record that preserves its state and attempt count.
  :func:`reduce_journal` ∘ :func:`compact_records` is the identity on
  reduced state (property-tested in ``tests/property``).

The reduction itself (:func:`reduce_journal`) is a pure function over record
lists, so recovery logic is testable without a filesystem.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional

from repro.api.wire import decode_journal_record, encode_journal_record
from repro.errors import WireFormatError

__all__ = ["JournalEntry", "JobJournal", "reduce_journal", "compact_records"]

#: The journal file name inside a journal directory.
JOURNAL_FILENAME = "journal.jsonl"


@dataclass
class JournalEntry:
    """The reduced state of one job after replaying its records."""

    job_id: str
    request: Dict[str, object]
    cache_key: str
    priority: int = 0
    state: str = "queued"
    attempt: int = 0
    error: Optional[Dict[str, object]] = None
    error_status: int = 500
    seq: int = 0  # submit order among surviving jobs

    @property
    def terminal(self) -> bool:
        return self.state in ("done", "failed")


def reduce_journal(records: List[Mapping[str, object]]) -> Dict[str, JournalEntry]:
    """Fold a record sequence into per-job reduced state.

    Records for jobs that were never submitted (possible after a partial
    compaction or a torn head) are ignored; later transitions overwrite
    earlier ones, so the fold is the job state machine itself.
    """
    entries: Dict[str, JournalEntry] = {}
    for record in records:
        event = record.get("event")
        job_id = str(record.get("job_id", ""))
        if event == "submit":
            request = record.get("request")
            cache_key = record.get("cache_key")
            if not isinstance(request, Mapping) or not isinstance(cache_key, str):
                continue  # ill-shaped submit: unrecoverable, skip the job
            entries[job_id] = JournalEntry(
                job_id=job_id,
                request=dict(request),
                cache_key=cache_key,
                priority=int(record.get("priority", 0) or 0),
                seq=len(entries),
            )
            continue
        entry = entries.get(job_id)
        if entry is None:
            continue
        attempt = record.get("attempt")
        if isinstance(attempt, int):
            entry.attempt = attempt
        if event == "start":
            entry.state = "running"
            entry.error = None
            entry.error_status = 500
        elif event == "retry":
            entry.state = "queued"
            entry.error = None
            entry.error_status = 500
        elif event == "done":
            entry.state = "done"
            entry.error = None
            entry.error_status = 500
        elif event == "failed":
            entry.state = "failed"
            error = record.get("error")
            entry.error = dict(error) if isinstance(error, Mapping) else None
            status = record.get("status")
            entry.error_status = int(status) if isinstance(status, int) else 500
    return entries


def compact_records(records: List[Mapping[str, object]]) -> List[Dict[str, object]]:
    """The minimal record list with the same reduction as ``records``.

    Per job (in submit order): the ``submit`` record, then exactly one extra
    record when needed to preserve state/attempt — ``start`` for running,
    ``retry`` for re-queued (attempt > 0), ``done``/``failed`` for terminal.
    """
    compacted: List[Dict[str, object]] = []
    entries = sorted(reduce_journal(records).values(), key=lambda entry: entry.seq)
    for entry in entries:
        compacted.append(
            encode_journal_record(
                "submit",
                entry.job_id,
                request=entry.request,
                cache_key=entry.cache_key,
                priority=entry.priority,
            )
        )
        if entry.state == "running":
            compacted.append(
                encode_journal_record("start", entry.job_id, attempt=entry.attempt)
            )
        elif entry.state == "queued" and entry.attempt > 0:
            compacted.append(
                encode_journal_record("retry", entry.job_id, attempt=entry.attempt)
            )
        elif entry.state == "done":
            compacted.append(
                encode_journal_record("done", entry.job_id, attempt=entry.attempt)
            )
        elif entry.state == "failed":
            compacted.append(
                encode_journal_record(
                    "failed",
                    entry.job_id,
                    attempt=entry.attempt,
                    error=entry.error,
                    status=entry.error_status,
                )
            )
    return compacted


@dataclass
class JobJournal:
    """An append-only JSONL write-ahead log in one directory.

    ``fsync=True`` (the default) makes every append durable before the
    manager proceeds; ``fsync=False`` trades the crash window for append
    latency (the OS still sees every complete line — only power loss can
    tear more than the tail).  ``faults`` attaches a
    :class:`~repro.faults.FaultPlan` whose ``journal.append`` site can tear
    or fail writes deterministically.
    """

    directory: Path
    fsync: bool = True
    faults: Optional[object] = None
    # loop-confined: undecodable lines, last scan
    skipped: int = field(default=0, init=False)
    appends: int = field(default=0, init=False)  # loop-confined
    # loop-confined
    _handle: Optional[object] = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        self.directory = Path(self.directory)

    @property
    def path(self) -> Path:
        return self.directory / JOURNAL_FILENAME

    # -- writing --------------------------------------------------------- #
    def _open(self):
        if self._handle is None or self._handle.closed:
            self.directory.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("ab")
        return self._handle

    def append(self, event: str, job_id: str, **fields: object) -> None:
        """Durably append one transition (a single complete JSONL line)."""
        record = encode_journal_record(event, job_id, **fields)
        line = json.dumps(record, sort_keys=True).encode("utf8") + b"\n"
        if self.faults is not None:
            action = self.faults.fire("journal.append")
            if action is not None and action.kind == "tear":
                # Simulate a crash mid-write: only a prefix reaches the disk.
                handle = self._open()
                handle.write(line[: max(1, action.keep)])
                handle.flush()
                if self.fsync:
                    os.fsync(handle.fileno())
                return
        handle = self._open()
        handle.write(line)
        handle.flush()
        if self.fsync:
            os.fsync(handle.fileno())
        self.appends += 1

    # -- reading --------------------------------------------------------- #
    def scan(self) -> List[Dict[str, object]]:
        """Every decodable record, in file order; torn or foreign lines are
        skipped and counted in :attr:`skipped` (a torn *tail* is the normal
        crash artifact; mid-file damage is tolerated the same way)."""
        self.skipped = 0
        records: List[Dict[str, object]] = []
        if not self.path.is_file():
            return records
        with self.path.open("rb") as handle:
            for raw in handle:
                line = raw.decode("utf8", errors="replace").strip()
                if not line:
                    continue
                try:
                    records.append(decode_journal_record(json.loads(line)))
                except (json.JSONDecodeError, WireFormatError):
                    self.skipped += 1
        return records

    def replay(self) -> Dict[str, JournalEntry]:
        """The reduced per-job state of the current journal file."""
        return reduce_journal(self.scan())

    # -- compaction ------------------------------------------------------ #
    def compact(self, drop_terminal: bool = False) -> int:
        """Atomically rewrite the journal as its reduced state; returns the
        number of records written.  ``drop_terminal=True`` additionally
        forgets done/failed jobs (their results live in the cache; their ids
        become unknown after the *next* restart)."""
        records = compact_records(self.scan())
        if drop_terminal:
            terminal = {
                record["job_id"] for record in records if record["event"] in ("done", "failed")
            }
            records = [record for record in records if record["job_id"] not in terminal]
        if self._handle is not None and not self._handle.closed:
            self._handle.close()
        self._handle = None
        self.directory.mkdir(parents=True, exist_ok=True)
        descriptor, tmp_name = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(descriptor, "wb") as handle:
                for record in records:
                    handle.write(json.dumps(record, sort_keys=True).encode("utf8") + b"\n")
                handle.flush()
                if self.fsync:
                    os.fsync(handle.fileno())
            os.replace(tmp_name, self.path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return len(records)

    # -- shape ----------------------------------------------------------- #
    def describe(self) -> Dict[str, object]:
        """On-disk shape for ``/v1/metrics``: path, record/byte counts, the
        fsync policy, and how many lines the last scan skipped."""
        records = 0
        size = 0
        if self.path.is_file():
            size = self.path.stat().st_size
            with self.path.open("rb") as handle:
                records = sum(1 for raw in handle if raw.strip())
        return {
            "path": str(self.path),
            "records": records,
            "bytes": size,
            "fsync": self.fsync,
            "skipped_last_scan": self.skipped,
            "appends": self.appends,
        }

    def close(self) -> None:
        if self._handle is not None and not self._handle.closed:
            self._handle.close()
        self._handle = None
