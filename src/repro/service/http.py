"""A zero-dependency HTTP front end for :class:`~repro.service.JobManager`.

The server is a hand-rolled HTTP/1.1 implementation over
:func:`asyncio.start_server` — stdlib only, one connection per request
(``Connection: close``), JSON bodies throughout.  Routes (all under
``/v1``):

=========================  ======================================================
``GET  /v1/health``        liveness + the service's wire schema version
``GET  /v1/experiments``   the registry index (id, title, capabilities)
``POST /v1/jobs``          submit a wire-encoded RunRequest; returns the job
                           record (``deduplicated`` marks single-flight joins)
``GET  /v1/jobs/<id>``     the job record (state: queued/running/done/failed)
``GET  /v1/jobs/<id>/result``  the wire-encoded result (409 until terminal,
                           the job's error payload when failed)
``GET  /v1/jobs/<id>/events``  SSE stream: replays the job's event log, then
                           follows live until a terminal event.  Every frame
                           carries an ``id:`` line (the event's log index);
                           a reconnecting client sends ``Last-Event-ID`` to
                           resume exactly where its stream was severed
``GET  /v1/metrics``       job states, counters, span aggregates, queue and
                           journal shape, cache stats
=========================  ======================================================

Error mapping is **mechanical**: every handler failure goes through
:func:`repro.errors.error_payload`, so the taxonomy's ``http_status`` /
``to_payload`` is the single source of truth — the HTTP layer contains no
per-exception cases.  Backpressure responses (429 queue-full, 503 draining)
automatically carry a ``Retry-After`` header taken from the error's
``retry_after`` detail.  Each request is traced as a ``service.request``
span on a per-request recorder merged into the manager's (so ``/metrics``
sees request spans without cross-task nesting artifacts).

Crash safety: with ``journal_dir`` set the service replays the job journal
*before* accepting connections, and :func:`serve` installs a SIGTERM/SIGINT
handler that drains gracefully — running jobs finish, queued jobs stay
journaled for the next start, and only then does the process exit.

:class:`ServiceThread` hosts a service on a daemon thread for tests and
embedders (the server runs in-process, so custom registries work);
:func:`serve` is the blocking entry point behind ``python -m repro serve``.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import re
import signal
import threading
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro.api.wire import WIRE_SCHEMA, decode_request, encode_result
from repro.engine.cache import ResultCache
from repro.errors import WireFormatError, error_payload
from repro.faults import FaultPlan
from repro.harness.registry import ExperimentRegistry
from repro.obs import TraceRecorder, use_recorder
from repro.retry import BackoffPolicy
from repro.service.jobs import JobManager, JobState

__all__ = ["ExperimentService", "ServiceThread", "serve"]

#: Largest accepted request body; submissions are small JSON documents.
MAX_BODY_BYTES = 4 * 1024 * 1024

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Statuses whose responses advertise when to come back.
_RETRY_AFTER_STATUSES = (429, 503)

_JOB_ROUTE = re.compile(r"^/v1/jobs/(?P<job_id>[^/]+)(?P<tail>/result|/events)?$")


class _HttpError(Exception):
    """A malformed-request failure with a fixed status (pre-taxonomy: these
    never reach the error registry because no repro code raised them)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class ExperimentService:
    """The asyncio server owning one :class:`JobManager`.

    Construct, then either ``await start_async()`` inside a running loop
    (tests, embedding) or call the blocking :func:`serve` helper.  ``port=0``
    binds an ephemeral port; the bound address is ``self.address`` once
    started.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8765,
        registry: Optional[ExperimentRegistry] = None,
        cache: Union[bool, None, str, Path, ResultCache] = True,
        max_workers: Optional[int] = None,
        journal_dir: Union[None, str, Path] = None,
        job_timeout: Optional[float] = None,
        max_retries: int = 0,
        max_queue: Optional[int] = None,
        backoff: Optional[BackoffPolicy] = None,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.manager = JobManager(
            registry=registry,
            cache=cache,
            max_workers=max_workers,
            journal_dir=journal_dir,
            job_timeout=job_timeout,
            max_retries=max_retries,
            max_queue=max_queue,
            backoff=backoff,
            faults=faults,
        )
        self._server: Optional[asyncio.AbstractServer] = None

    @property
    def address(self) -> Tuple[str, int]:
        if self._server is None:
            raise RuntimeError("service not started")
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    # ------------------------------------------------------------------ #
    async def start_async(self) -> Tuple[str, int]:
        # Replay the journal before the first connection can race it.
        await self.manager.start()
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        return self.address

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start_async()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop_async(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.manager.close()

    # ------------------------------------------------------------------ #
    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        recorder = TraceRecorder()
        try:
            try:
                method, path, headers, body = await self._read_request(reader)
            except _HttpError as error:
                await self._send_json(
                    writer, error.status, {"error": "bad_request", "message": str(error)}
                )
                return
            self.manager.recorder.counter("service.requests")
            with recorder.span("service.request", method=method, path=path) as span:
                try:
                    if path.startswith("/v1/jobs/") and path.endswith("/events"):
                        # SSE writes incrementally; it cannot go through the
                        # buffered JSON response path.
                        await self._route_events(writer, method, path, headers)
                        span.annotate(status=200)
                        return
                    status, payload = await self._route(method, path, body)
                except _HttpError as error:
                    status, payload = error.status, {
                        "error": "bad_request",
                        "message": str(error),
                    }
                except Exception as error:  # noqa: BLE001 - mechanical mapping
                    status, payload = error_payload(error)
                span.annotate(status=status)
            await self._send_json(writer, status, payload)
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass  # client went away mid-response; nothing to answer
        finally:
            # Merge on the loop thread: per-request recorders keep span
            # nesting correct even with interleaved handler tasks.
            if isinstance(self.manager.recorder, TraceRecorder):
                self.manager.recorder.merge(recorder.export())
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, Dict[str, str], bytes]:
        try:
            request_line = await reader.readline()
        except (ValueError, asyncio.LimitOverrunError):
            raise _HttpError(400, "request line too long") from None
        parts = request_line.decode("latin1").split()
        if len(parts) != 3:
            raise _HttpError(400, "malformed request line")
        method, target, _version = parts
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise _HttpError(400, "malformed Content-Length") from None
        if length > MAX_BODY_BYTES:
            raise _HttpError(413, f"request body over {MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(length) if length else b""
        path = target.split("?", 1)[0]
        return method.upper(), path, headers, body

    # ------------------------------------------------------------------ #
    async def _route(self, method: str, path: str, body: bytes) -> Tuple[int, Dict[str, object]]:
        if path == "/v1/health":
            self._expect(method, "GET")
            return 200, {"schema": WIRE_SCHEMA, "kind": "health", "status": "ok"}
        if path == "/v1/experiments":
            self._expect(method, "GET")
            return 200, {
                "schema": WIRE_SCHEMA,
                "kind": "experiments",
                "experiments": [
                    {
                        "experiment_id": experiment_id,
                        "title": spec.title,
                        "capabilities": sorted(spec.capabilities),
                    }
                    for experiment_id, spec in self.manager.registry.items()
                ],
            }
        if path == "/v1/metrics":
            self._expect(method, "GET")
            return 200, self.manager.metrics()
        if path == "/v1/jobs":
            self._expect(method, "POST")
            record = self._parse_body(body)
            # Priority rides alongside the wire-encoded request: it is a
            # service instruction, not part of the request's identity (two
            # submissions at different priorities still dedupe together).
            priority = record.pop("priority", 0)
            if not isinstance(priority, int) or isinstance(priority, bool):
                raise WireFormatError("priority must be an integer")
            request = decode_request(record)
            job, deduplicated = await self.manager.submit(request, priority=priority)
            return 200, job.snapshot(deduplicated=deduplicated)
        match = _JOB_ROUTE.match(path)
        if match is not None:
            self._expect(method, "GET")
            job = self.manager.get(match.group("job_id"))
            if match.group("tail") == "/result":
                return self._result_response(job)
            return 200, job.snapshot()
        raise _HttpError(404, f"no route for {path}")

    def _result_response(self, job) -> Tuple[int, Dict[str, object]]:
        if job.state == JobState.FAILED:
            return job.error_status, dict(job.error or {})
        if job.report is None:
            return 409, {
                "error": "job_not_terminal",
                "message": f"job {job.id} is {job.state}; result not available yet",
                "details": {"job_id": job.id, "state": job.state},
            }
        report = job.report
        return 200, encode_result(
            report.result,
            job_id=job.id,
            from_cache=report.from_cache,
            cache_key=job.cache_key,
            duration_seconds=report.duration_seconds,
        )

    async def _route_events(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        path: str,
        headers: Dict[str, str],
    ) -> None:
        match = _JOB_ROUTE.match(path)
        assert match is not None and match.group("tail") == "/events"
        try:
            self._expect(method, "GET")
            self.manager.get(match.group("job_id"))  # 404 before headers go out
        except Exception as error:  # noqa: BLE001 - mechanical mapping
            status, payload = (
                (error.status, {"error": "bad_request", "message": str(error)})
                if isinstance(error, _HttpError)
                else error_payload(error)
            )
            await self._send_json(writer, status, payload)
            return
        # SSE resume: a reconnecting client reports the last event index it
        # saw; replay starts right after it.
        after: Optional[int] = None
        raw_cursor = headers.get("last-event-id", "")
        if raw_cursor:
            try:
                after = int(raw_cursor)
            except ValueError:
                after = None
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-store\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()
        faults = self.manager.faults
        async for event in self.manager.events(match.group("job_id"), after=after):
            if faults is not None:
                action = faults.fire("sse.stream")
                if action is not None and action.kind == "drop":
                    # Sever the stream mid-flight; the client's resume path
                    # (Last-Event-ID) is what recovers from this.
                    self.manager.recorder.counter("service.sse_drops")
                    return
            chunk = (
                f"id: {event.get('index', 0)}\n"
                f"event: {event['event']}\n"
                f"data: {json.dumps(event, sort_keys=True)}\n\n"
            )
            writer.write(chunk.encode("utf8"))
            await writer.drain()

    # ------------------------------------------------------------------ #
    @staticmethod
    def _expect(method: str, allowed: str) -> None:
        if method != allowed:
            raise _HttpError(405, f"method {method} not allowed (use {allowed})")

    @staticmethod
    def _parse_body(body: bytes) -> Dict[str, object]:
        try:
            record = json.loads(body.decode("utf8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise WireFormatError(f"request body is not valid JSON: {error}") from None
        if not isinstance(record, dict):
            raise WireFormatError("request body must be a JSON object")
        return record

    @staticmethod
    async def _send_json(writer: asyncio.StreamWriter, status: int, payload: object) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf8")
        extra = ""
        if status in _RETRY_AFTER_STATUSES and isinstance(payload, dict):
            # Backpressure responses tell the client when to come back; the
            # hint comes from the error's own details (deterministic, from
            # the backoff policy), defaulting to one second.
            details = payload.get("details")
            hint = details.get("retry_after") if isinstance(details, dict) else None
            if not isinstance(hint, (int, float)) or hint <= 0:
                hint = 1.0
            extra = f"Retry-After: {max(1, int(round(hint)))}\r\n"
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{extra}"
            f"Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin1") + body)
        await writer.drain()


class ServiceThread:
    """Host an :class:`ExperimentService` on a daemon thread.

    For tests and embedders: the server shares the caller's process (custom
    registries and temp caches work), while the caller keeps a plain
    blocking world.  Usable as a context manager::

        with ServiceThread(port=0, cache=tmp_path) as service:
            client = Client(service.url)
    """

    def __init__(self, **service_kwargs: object) -> None:
        self.service = ExperimentService(**service_kwargs)  # type: ignore[arg-type]
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def url(self) -> str:
        return self.service.url

    @property
    def manager(self) -> JobManager:
        return self.service.manager

    def start(self, timeout: float = 10.0) -> "ServiceThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout):
            raise RuntimeError("service thread did not start in time")
        if self._startup_error is not None:
            raise RuntimeError("service failed to start") from self._startup_error
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self.service.start_async())
        except BaseException as error:  # pragma: no cover - startup failure path
            self._startup_error = error
            self._started.set()
            loop.close()
            return
        self._started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(self.service.stop_async())
            loop.close()

    def stop(self, timeout: float = 30.0) -> None:
        if self._loop is not None and self._thread is not None and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout)
        self._loop = None
        self._thread = None

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


def serve(
    host: str = "127.0.0.1",
    port: int = 8765,
    registry: Optional[ExperimentRegistry] = None,
    cache: Union[bool, None, str, Path, ResultCache] = True,
    max_workers: Optional[int] = None,
    journal_dir: Union[None, str, Path] = None,
    job_timeout: Optional[float] = None,
    max_retries: int = 0,
    max_queue: Optional[int] = None,
    stream=None,
) -> int:
    """Run the service until interrupted (the ``repro serve`` entry point).

    SIGTERM and SIGINT trigger a graceful drain: the listener closes,
    running jobs finish (their ``done`` records reach the journal), queued
    jobs stay journaled for the next start, and only then does the process
    exit.  A second signal during the drain is ignored — the drain is the
    shutdown path.
    """

    async def _main() -> None:
        service = ExperimentService(
            host=host,
            port=port,
            registry=registry,
            cache=cache,
            max_workers=max_workers,
            journal_dir=journal_dir,
            job_timeout=job_timeout,
            max_retries=max_retries,
            max_queue=max_queue,
        )
        await service.start_async()
        if stream is not None:
            bound_host, bound_port = service.address
            stream.write(f"repro service listening on http://{bound_host}:{bound_port}\n")
            stream.flush()
        loop = asyncio.get_running_loop()
        drain = asyncio.Event()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, drain.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # platforms without loop signal handlers fall back to KeyboardInterrupt
        server_task = asyncio.create_task(service.serve_forever())
        drain_task = asyncio.create_task(drain.wait())
        try:
            await asyncio.wait({server_task, drain_task}, return_when=asyncio.FIRST_COMPLETED)
        finally:
            for task in (server_task, drain_task):
                task.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await task
            await service.stop_async()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
    return 0
