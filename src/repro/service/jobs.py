"""The asynchronous job queue behind the experiment service.

:class:`JobManager` owns all mutable service state and runs **entirely on
one asyncio event loop**; experiment execution happens on supervised worker
threads via :func:`~repro.api.backends.execute_payload` (the same worker
entry point every :mod:`repro.api` backend uses), so results are
bit-identical to an inline :meth:`repro.api.Session.run` at the same seed.

Single-flight
-------------
Jobs are deduplicated by the request's **canonical cache key** (the same
spec-derived key the result cache uses).  While a job for a key is in
flight, every further submission of an identical request joins it as a
subscriber instead of executing again: N concurrent identical submissions →
exactly one execution, N subscribers, N bit-identical results.  Once a job
reaches a terminal state the key leaves the in-flight table — subsequent
submissions are served by the result cache instead.

Admission control and priorities
--------------------------------
The queue is a bounded priority heap: higher ``priority`` dispatches first,
FIFO within a priority.  When ``max_queue`` is set, a submission that would
exceed it is refused at the door with
:class:`~repro.errors.QueueFullError` (HTTP 429 + ``Retry-After``) —
accepted work is never dropped; saturation is refused before acceptance.
``max_workers`` bounds *logical* execution slots: a timed-out attempt
releases its slot immediately even though its abandoned thread may still be
wedged, so a stuck experiment cannot eat the pool.

Retry, timeout, and backoff
---------------------------
Each attempt runs under an optional ``job_timeout`` deadline
(:class:`~repro.errors.JobTimeoutError` on expiry).  Retryable failures —
classified by :func:`repro.retry.is_retryable`: timeouts and foreign
crashes yes, deliberate taxonomy errors no — re-enqueue up to
``max_retries`` times under the manager's :class:`~repro.retry.BackoffPolicy`
(capped exponential, seeded jitter, fully deterministic).  A job that
exhausts its budget fails with :class:`~repro.errors.RetriesExhaustedError`
carrying the last underlying error.

Crash safety
------------
With ``journal_dir`` set, every transition is write-ahead logged through
:class:`~repro.service.journal.JobJournal` *before* it takes effect.
:meth:`JobManager.start` replays the journal on startup: failed jobs
resurface failed, done jobs are served from the result cache (or
re-executed when their entry was evicted — determinism makes re-execution
recovery), and jobs queued or running at crash time re-enqueue.  The log is
compacted after replay.

Lifecycle and events
--------------------
A job moves ``queued → running → done | failed`` (with ``running → queued``
on a retry); a cache hit at submission creates the job directly in ``done``
(``from_cache=True``).  Progress is recorded as an ordered event log per
job, using the **same taxonomy** as :class:`repro.api.ProgressEvent`:
``start`` when an attempt begins, ``retry`` when one re-enqueues,
``cached`` (terminal, the only event) for a cache hit, ``done`` on
success — always emitted *after* the result is persisted to the cache —
plus ``failed`` for the error path.  Every event carries its log ``index``,
which the HTTP layer emits as the SSE event id (the resume cursor).
:meth:`JobManager.events` replays the log from any cursor and then follows
it live.

Telemetry
---------
The manager keeps its own :class:`~repro.obs.TraceRecorder`.  Each
execution runs under a fresh per-thread recorder whose export — a
``service.queue_wait`` span (time between enqueue and a slot picking the
job up) and a ``service.execute`` span wrapping the run and the cache
write — is merged into the manager's recorder on the loop thread, so
``service.execute`` span counts are an exact execution count (the
single-flight acceptance check).  Recovery paths add ``service.replay`` and
``service.retry`` spans and the ``service.retries`` / ``service.timeouts`` /
``service.rejected`` / ``service.replayed`` counters.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
import threading
import time
from pathlib import Path
from typing import AsyncIterator, Dict, List, Optional, Set, Tuple, Union

from repro.api.backends import execute_payload
from repro.api.session import RunReport, RunRequest
from repro.api.wire import WIRE_SCHEMA, decode_request, encode_request
from repro.engine.cache import ResultCache
from repro.errors import (
    JobNotFound,
    JobTimeoutError,
    QueueFullError,
    RetriesExhaustedError,
    ShuttingDownError,
    WireFormatError,
    error_payload,
)
from repro.faults import FaultPlan
from repro.harness.registry import REGISTRY, ExperimentRegistry, SpecValidationError
from repro.harness.results import ExperimentResult
from repro.obs import Recorder, Span, TraceRecorder, use_recorder
from repro.retry import BackoffPolicy, is_retryable
from repro.service.journal import JobJournal, reduce_journal

__all__ = ["JobState", "Job", "JobManager"]

#: Event kinds that end a job's event stream.
TERMINAL_EVENTS = ("cached", "done", "failed")


class JobState:
    """The four job states (plain strings, wire-stable)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"

    TERMINAL = (DONE, FAILED)


class Job:
    """One deduplicated unit of work: a request, its state, its event log."""

    def __init__(
        self, job_id: str, request: RunRequest, cache_key: str, priority: int = 0
    ) -> None:
        self.id = job_id
        self.request = request
        self.cache_key = cache_key
        self.priority = priority
        self.state = JobState.QUEUED  # loop-confined
        self.from_cache = False  # loop-confined
        self.subscribers = 1  # loop-confined
        self.attempt = 0  # loop-confined
        self.report: Optional[RunReport] = None  # loop-confined
        self.error: Optional[Dict[str, object]] = None  # loop-confined
        self.error_status = 500  # loop-confined
        self.created_at = time.time()
        self.enqueued_at = time.perf_counter()  # loop-confined
        self.queue_wait_seconds: Optional[float] = None  # loop-confined
        self.events: List[Dict[str, object]] = []  # loop-confined
        self.task: Optional[asyncio.Task] = None  # loop-confined
        # Futures of event-stream consumers waiting for the next event; all
        # access is confined to the event loop thread, so no lock is needed.
        # loop-confined
        self._waiters: List[asyncio.Future] = []

    @property
    def terminal(self) -> bool:
        return self.state in JobState.TERMINAL

    # -- event log (loop thread only) ---------------------------------- #
    def emit(self, kind: str, **fields: object) -> None:
        """Append one progress event and wake every waiting stream.

        The event carries its own log ``index`` — the SSE id clients resume
        from after a reconnect.
        """
        event: Dict[str, object] = {
            "schema": WIRE_SCHEMA,
            "kind": "event",
            "event": kind,
            "job_id": self.id,
            "experiment_id": self.request.experiment_id,
            "state": self.state,
            "index": len(self.events),
        }
        event.update(fields)
        self.events.append(event)
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            if not waiter.done():
                waiter.set_result(None)

    async def next_event(self, index: int) -> None:
        """Return once ``events[index]`` exists (loop thread only)."""
        while len(self.events) <= index:
            waiter = asyncio.get_running_loop().create_future()
            self._waiters.append(waiter)
            await waiter

    # -- wire form ------------------------------------------------------ #
    def snapshot(self, deduplicated: Optional[bool] = None) -> Dict[str, object]:
        """The job's wire record (the ``kind="job"`` envelope of the HTTP
        layer); ``deduplicated`` is per-submission provenance."""
        record: Dict[str, object] = {
            "schema": WIRE_SCHEMA,
            "kind": "job",
            "job_id": self.id,
            "experiment_id": self.request.experiment_id,
            "preset": self.request.preset,
            "state": self.state,
            "cache_key": self.cache_key,
            "from_cache": self.from_cache,
            "subscribers": self.subscribers,
            "priority": self.priority,
            "attempt": self.attempt,
            "error": dict(self.error) if self.error is not None else None,
        }
        if deduplicated is not None:
            record["deduplicated"] = deduplicated
        return record


class JobManager:
    """Single-flight job execution over bounded, supervised worker slots.

    Parameters mirror :class:`repro.api.Session` where they overlap:
    ``registry`` resolves experiment ids, ``cache`` is ``True`` (default
    location) / a path / a :class:`ResultCache` / ``None`` (no caching), and
    ``max_workers`` bounds concurrent execution slots (default 4).
    ``recorder`` is the manager's telemetry sink (a fresh
    :class:`TraceRecorder` when omitted — the service always records, that
    is what ``/metrics`` reads).

    Robustness knobs (all off by default, so an unconfigured manager behaves
    exactly like the pre-journal service):

    * ``journal_dir`` — write-ahead log directory; call :meth:`start` after
      construction to replay it.
    * ``job_timeout`` — per-attempt execution deadline in seconds.
    * ``max_retries`` — retry budget for retryable failures (0 = fail fast).
    * ``max_queue`` — queued-job bound; beyond it submissions are refused
      with :class:`QueueFullError` (never silently dropped).
    * ``backoff`` — the deterministic retry schedule (seeded jitter).
    * ``faults`` — a :class:`~repro.faults.FaultPlan` for the chaos suite.
    """

    def __init__(
        self,
        registry: Optional[ExperimentRegistry] = None,
        cache: Union[bool, None, str, Path, ResultCache] = True,
        max_workers: Optional[int] = None,
        recorder: Optional[Recorder] = None,
        journal_dir: Union[None, str, Path] = None,
        job_timeout: Optional[float] = None,
        max_retries: int = 0,
        max_queue: Optional[int] = None,
        backoff: Optional[BackoffPolicy] = None,
        faults: Optional[FaultPlan] = None,
        journal_fsync: bool = True,
    ) -> None:
        self.registry = registry if registry is not None else REGISTRY
        if isinstance(cache, ResultCache):
            self.cache: Optional[ResultCache] = cache
        elif cache is True:
            self.cache = ResultCache()
        elif cache in (None, False):
            self.cache = None
        else:
            self.cache = ResultCache(Path(cache))
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be positive (or None for the default)")
        if job_timeout is not None and job_timeout <= 0:
            raise ValueError("job_timeout must be positive (or None for no deadline)")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if max_queue is not None and max_queue < 1:
            raise ValueError("max_queue must be positive (or None for unbounded)")
        self.max_workers = max_workers if max_workers is not None else 4
        self.job_timeout = job_timeout
        self.max_retries = max_retries
        self.max_queue = max_queue
        self.backoff = backoff if backoff is not None else BackoffPolicy()
        self.faults = faults
        self.recorder: Recorder = recorder if recorder is not None else TraceRecorder()
        self._journal: Optional[JobJournal] = (
            JobJournal(Path(journal_dir), fsync=journal_fsync, faults=faults)
            if journal_dir is not None
            else None
        )
        self._jobs: Dict[str, Job] = {}  # loop-confined
        self._inflight: Dict[str, Job] = {}  # loop-confined
        # loop-confined: (-priority, seq, job) heap entries
        self._queue: List[Tuple[int, int, Job]] = []
        self._seq = itertools.count()  # loop-confined
        self._running = 0  # loop-confined: logical execution slots in use
        self._tasks: Set[asyncio.Task] = set()  # loop-confined
        self._ids = itertools.count(1)  # loop-confined
        self._closed = False  # loop-confined
        self._started = False  # loop-confined

    # ------------------------------------------------------------------ #
    def _resolve_key(self, request: RunRequest) -> str:
        try:
            spec = self.registry[request.experiment_id]
        except KeyError:
            raise SpecValidationError(
                f"unknown experiment {request.experiment_id!r}; available: "
                f"{', '.join(self.registry)}"
            ) from None
        return spec.cache_key(request.kwargs)

    def _journal_append(self, event: str, job_id: str, **fields: object) -> None:
        """Best-effort journal append for non-admission transitions: a
        journal write failure must not kill a job that is already running."""
        if self._journal is None:
            return
        try:
            self._journal.append(event, job_id, **fields)
        except Exception:
            self.recorder.counter("service.journal_errors")

    def _cached_report(self, request: RunRequest, key: str) -> Optional[RunReport]:
        """The cache's answer for a key as a ``from_cache`` report, if any."""
        if self.cache is None:
            return None
        with use_recorder(self.recorder):
            payload = self.cache.get(key)
        if payload is None:
            return None
        try:
            result = ExperimentResult.from_dict(payload)
        except (KeyError, TypeError, ValueError):
            return None  # foreign/stale payload shape: treat as a miss
        return RunReport(
            request=request,
            result=result,
            from_cache=True,
            cache_path=self.cache.path_for(key),
        )

    async def submit(self, request: RunRequest, priority: int = 0) -> Tuple[Job, bool]:
        """Submit one request; returns ``(job, deduplicated)``.

        ``deduplicated`` is ``True`` when the submission joined an in-flight
        job for the same canonical key instead of creating one.  A cache hit
        creates the job directly in the terminal ``done`` state.  Raises
        :class:`ShuttingDownError` once the manager is draining,
        :class:`QueueFullError` when admission control refuses the request,
        and :class:`SpecValidationError` for unknown experiments/parameters.
        Higher ``priority`` dispatches first (FIFO within a priority).
        """
        if self._closed:
            raise ShuttingDownError("service is draining; no new jobs accepted")
        self.recorder.counter("service.submissions")
        key = self._resolve_key(request)

        inflight = self._inflight.get(key)
        if inflight is not None and not inflight.terminal:
            inflight.subscribers += 1
            self.recorder.counter("service.deduplicated")
            return inflight, True

        # Probe the cache synchronously on the loop thread (a small JSON
        # read) so two immediate identical submissions cannot both miss; the
        # manager's recorder sees the cache.lookup span.  Cache hits bypass
        # admission control — they consume no queue slot.
        report = self._cached_report(request, key)
        if report is not None:
            job = Job(f"j{next(self._ids):06d}-{key[:8]}", request, key, priority)
            self._jobs[job.id] = job
            job.report = report
            job.from_cache = True
            job.state = JobState.DONE
            self.recorder.counter("service.cache_hits")
            self._journal_append(
                "submit", job.id, request=encode_request(request), cache_key=key,
                priority=priority,
            )
            self._journal_append("done", job.id, attempt=0)
            job.emit("cached", verdict=report.result.verdict)
            return job, False

        if self.max_queue is not None and len(self._queue) >= self.max_queue:
            self.recorder.counter("service.rejected")
            raise QueueFullError(
                f"job queue is full ({len(self._queue)}/{self.max_queue} queued)",
                queued=len(self._queue),
                max_queue=self.max_queue,
                retry_after=max(0.1, self.backoff.delay(0, key)),
            )

        job = Job(f"j{next(self._ids):06d}-{key[:8]}", request, key, priority)
        if self._journal is not None:
            # Write-ahead: the submission is only accepted once it is
            # durable.  A journal failure here refuses the job outright.
            self._journal.append(
                "submit", job.id, request=encode_request(request), cache_key=key,
                priority=priority,
            )
        self._jobs[job.id] = job
        self._inflight[key] = job
        self._enqueue(job)
        self._dispatch()
        return job, False

    # -- queue / dispatch ----------------------------------------------- #
    def _enqueue(self, job: Job) -> None:
        job.enqueued_at = time.perf_counter()
        heapq.heappush(self._queue, (-job.priority, next(self._seq), job))

    def _dispatch(self) -> None:
        """Fill free execution slots from the priority queue (loop thread)."""
        if self._closed:
            return
        while self._queue and self._running < self.max_workers:
            _, _, job = heapq.heappop(self._queue)
            if job.terminal or job.state == JobState.RUNNING:  # pragma: no cover
                continue  # defensive: stale heap entry
            self._running += 1
            task = asyncio.create_task(self._attempt(job))
            job.task = task
            self._track(task)

    def _track(self, task: asyncio.Task) -> None:
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    # -- execution ------------------------------------------------------- #
    async def _attempt(self, job: Job) -> None:
        """Supervise one execution attempt: spawn the worker thread, enforce
        the deadline, route the outcome to success/retry/failure."""
        loop = asyncio.get_running_loop()
        queue_wait = time.perf_counter() - job.enqueued_at
        job.state = JobState.RUNNING
        job.queue_wait_seconds = queue_wait
        self._journal_append("start", job.id, attempt=job.attempt)
        job.emit("start", attempt=job.attempt)
        future: asyncio.Future = loop.create_future()
        thread = threading.Thread(
            target=self._execute,
            args=(job, job.attempt, queue_wait, loop, future),
            name=f"repro-worker-{job.id}-a{job.attempt}",
            daemon=True,
        )
        thread.start()
        try:
            try:
                outcome = await asyncio.wait_for(future, timeout=self.job_timeout)
            except asyncio.TimeoutError:
                # The attempt is abandoned: its slot frees now, and any late
                # delivery from the wedged thread is counted and discarded.
                self.recorder.counter("service.timeouts")
                raise JobTimeoutError(
                    f"job {job.id} exceeded its {self.job_timeout}s deadline "
                    f"(attempt {job.attempt})",
                    job_id=job.id,
                    timeout_seconds=self.job_timeout,
                    attempt=job.attempt,
                ) from None
        except Exception as error:
            self._handle_failure(job, error)
        else:
            result, cache_path, duration, _, export = outcome
            # Merge the worker's trace on the loop thread — the recorder is
            # only ever mutated here, so span counts stay exact.
            if isinstance(self.recorder, TraceRecorder):
                self.recorder.merge(export)
            self.recorder.counter("service.executions")
            self.recorder.histogram("service.queue_wait_seconds", queue_wait)
            job.report = RunReport(
                request=job.request,
                result=result,
                from_cache=False,
                cache_path=cache_path,
                duration_seconds=duration,
            )
            job.state = JobState.DONE
            self._journal_append("done", job.id, attempt=job.attempt)
            job.emit("done", verdict=result.verdict)
            if self._inflight.get(job.cache_key) is job:
                del self._inflight[job.cache_key]
        finally:
            self._running -= 1
            self._dispatch()

    def _handle_failure(self, job: Job, error: BaseException) -> None:
        """Route a failed attempt: re-enqueue under backoff while budget and
        retryability allow, otherwise transition to ``failed``."""
        status, payload = error_payload(error)
        if job.attempt < self.max_retries and is_retryable(error):
            job.attempt += 1
            job.state = JobState.QUEUED
            self.recorder.counter("service.retries")
            delay = self.backoff.delay(job.attempt - 1, job.cache_key)
            self._journal_append("retry", job.id, attempt=job.attempt)
            job.emit(
                "retry", attempt=job.attempt, delay_seconds=delay, error=dict(payload)
            )
            if self._closed:
                # Draining: leave the job journaled as queued for the next
                # start instead of sleeping through the drain.
                self._enqueue(job)
            else:
                self._track(asyncio.create_task(self._requeue_after(job, delay)))
            return
        if job.attempt > 0:
            exhausted = RetriesExhaustedError(
                f"job {job.id} failed after {job.attempt + 1} attempts",
                attempts=job.attempt + 1,
                last_error=payload,
            )
            status, payload = error_payload(exhausted)
        job.error = payload
        job.error_status = status
        job.state = JobState.FAILED
        self.recorder.counter("service.failed")
        self._journal_append(
            "failed", job.id, attempt=job.attempt, error=dict(payload), status=status
        )
        job.emit("failed", error=dict(payload))
        if self._inflight.get(job.cache_key) is job:
            del self._inflight[job.cache_key]

    async def _requeue_after(self, job: Job, delay: float) -> None:
        """Sleep out a backoff delay (under a ``service.retry`` span), then
        put the job back on the queue."""
        with self.recorder.span(
            "service.retry", job_id=job.id, attempt=job.attempt, delay_seconds=delay
        ):
            await asyncio.sleep(delay)
        self._enqueue(job)
        self._dispatch()

    def _execute(
        self,
        job: Job,
        attempt: int,
        queue_wait: float,
        loop: asyncio.AbstractEventLoop,
        future: asyncio.Future,
    ) -> None:
        """The worker-thread half: run the experiment under a fresh recorder
        and persist the result before delivering (cache-write-before-done).

        Delivery goes through the loop; a future that is already resolved
        (the supervisor timed this attempt out) discards the late result and
        counts it as ``service.stale_results``.
        """

        def deliver(value: object = None, error: Optional[BaseException] = None) -> None:
            def _resolve() -> None:
                if future.done():
                    self.recorder.counter("service.stale_results")
                    return
                if error is not None:
                    future.set_exception(error)
                else:
                    future.set_result(value)

            try:
                loop.call_soon_threadsafe(_resolve)
            except RuntimeError:  # pragma: no cover - loop already closed
                pass

        try:
            if self.faults is not None:
                self.faults.fire("worker.execute")
            recorder = TraceRecorder()
            wait_span = Span(
                "service.queue_wait",
                {"job_id": job.id, "experiment_id": job.request.experiment_id},
            )
            wait_span.started_at = job.created_at
            wait_span.wall_seconds = queue_wait
            recorder.spans.append(wait_span)
            started = time.perf_counter()
            with use_recorder(recorder):
                with recorder.span(
                    "service.execute",
                    job_id=job.id,
                    experiment_id=job.request.experiment_id,
                    cache_key=job.cache_key,
                    attempt=attempt,
                ) as span:
                    record = execute_payload(job.request.to_payload(), self.registry)
                    result = ExperimentResult.from_dict(record)
                    cache_path = None
                    if self.cache is not None:
                        cache_path = self.cache.put(
                            job.cache_key,
                            record,
                            key_fields={
                                "experiment_id": job.request.experiment_id,
                                "parameters": job.request.kwargs,
                                "preset": job.request.preset,
                            },
                        )
                    span.annotate(verdict=result.verdict, cached=cache_path is not None)
            duration = time.perf_counter() - started
        except BaseException as error:
            deliver(error=error)
        else:
            deliver((result, cache_path, duration, queue_wait, recorder.export()))

    # -- journal replay -------------------------------------------------- #
    async def start(self) -> int:
        """Replay the journal (idempotent); returns the re-enqueued count.

        Failed jobs resurface failed; done jobs are served from the result
        cache (``from_cache=True``) or — when their cache entry was
        evicted — re-executed, which determinism makes indistinguishable
        from recovery; queued/running jobs re-enqueue at their journaled
        priority and attempt.  The log is compacted afterwards.
        """
        if self._started or self._journal is None:
            self._started = True
            return 0
        self._started = True
        records = self._journal.scan()
        if self._journal.skipped:
            # The torn tail a crash mid-append leaves behind.
            self.recorder.counter("service.journal_torn", self._journal.skipped)
        entries = sorted(reduce_journal(records).values(), key=lambda entry: entry.seq)
        requeued = 0
        highest_id = 0
        with self.recorder.span(
            "service.replay",
            records=len(records),
            skipped=self._journal.skipped,
            jobs=len(entries),
        ) as span:
            for entry in entries:
                try:
                    request = decode_request(entry.request)
                except WireFormatError:
                    self.recorder.counter("service.journal_errors")
                    continue
                job = Job(entry.job_id, request, entry.cache_key, entry.priority)
                job.attempt = entry.attempt
                self._jobs[job.id] = job
                try:
                    highest_id = max(highest_id, int(entry.job_id[1:7]))
                except ValueError:
                    pass
                if entry.state == JobState.FAILED:
                    job.state = JobState.FAILED
                    job.error = dict(entry.error) if entry.error else {
                        "error": "internal",
                        "message": "job failed before shutdown",
                        "details": {},
                    }
                    job.error_status = entry.error_status
                    job.emit("failed", error=dict(job.error), replayed=True)
                    continue
                report = self._cached_report(request, entry.cache_key)
                if report is not None:
                    job.report = report
                    job.from_cache = True
                    job.state = JobState.DONE
                    self.recorder.counter("service.cache_hits")
                    job.emit("cached", verdict=report.result.verdict, replayed=True)
                    continue
                # Queued, interrupted mid-run, or done with an evicted cache
                # entry: re-execute.  Same seed, bit-identical result.
                job.state = JobState.QUEUED
                self._inflight[entry.cache_key] = job
                self._enqueue(job)
                self.recorder.counter("service.replayed")
                requeued += 1
            span.annotate(requeued=requeued)
        self._ids = itertools.count(highest_id + 1)
        try:
            self._journal.compact()
        except Exception:
            self.recorder.counter("service.journal_errors")
        self._dispatch()
        return requeued

    # ------------------------------------------------------------------ #
    def get(self, job_id: str) -> Job:
        """The job for an id, or raise :class:`JobNotFound`."""
        try:
            return self._jobs[job_id]
        except KeyError:
            raise JobNotFound(job_id) from None

    async def wait(self, job_id: str) -> Job:
        """Return the job once it is terminal."""
        job = self.get(job_id)
        index = 0
        while not job.terminal:
            await job.next_event(index)
            index = len(job.events)
        return job

    async def events(
        self, job_id: str, after: Optional[int] = None
    ) -> AsyncIterator[Dict[str, object]]:
        """Replay a job's event log, then follow it live until a terminal
        event (``cached``/``done``/``failed``) is yielded.

        ``after`` is a resume cursor (the last event ``index`` a client
        already saw — SSE's ``Last-Event-ID``): replay starts at
        ``after + 1``.  A cursor beyond the end of a *terminal* job's log —
        possible when a restarted server replayed a shorter log — resends
        the final terminal event, so a resuming client always observes the
        outcome instead of hanging.
        """
        job = self.get(job_id)
        index = 0 if after is None else max(0, after + 1)
        if job.terminal and index >= len(job.events):
            if job.events:
                yield dict(job.events[-1])
            return
        index = min(index, len(job.events))
        while True:
            while index < len(job.events):
                event = job.events[index]
                index += 1
                yield dict(event)
                if event["event"] in TERMINAL_EVENTS:
                    return
            await job.next_event(index)

    def jobs_by_state(self) -> Dict[str, int]:
        counts = {state: 0 for state in (JobState.QUEUED, JobState.RUNNING, *JobState.TERMINAL)}
        for job in self._jobs.values():
            counts[job.state] = counts.get(job.state, 0) + 1
        return counts

    def metrics(self) -> Dict[str, object]:
        """The ``/metrics`` summary: job states, telemetry counters,
        per-span aggregates, queue/retry configuration, the journal's disk
        shape, and the result cache's traffic and disk shape."""
        spans: Dict[str, Dict[str, float]] = {}
        counters: Dict[str, int] = {}
        if isinstance(self.recorder, TraceRecorder):
            counters = dict(self.recorder.counters)
            for span in self.recorder.iter_spans():
                entry = spans.setdefault(span.name, {"count": 0, "wall_seconds": 0.0})
                entry["count"] += 1
                entry["wall_seconds"] += span.wall_seconds
        cache: Dict[str, object] = {"enabled": self.cache is not None}
        if self.cache is not None:
            cache["stats"] = self.cache.stats.as_dict()
            cache["disk"] = self.cache.describe()
        journal: Dict[str, object] = {"enabled": self._journal is not None}
        if self._journal is not None:
            journal.update(self._journal.describe())
        return {
            "schema": WIRE_SCHEMA,
            "kind": "metrics",
            "jobs": self.jobs_by_state(),
            "inflight": len(self._inflight),
            "queue": {
                "depth": len(self._queue),
                "running": self._running,
                "max_queue": self.max_queue,
                "max_workers": self.max_workers,
            },
            "retry": {
                "max_retries": self.max_retries,
                "job_timeout": self.job_timeout,
                "backoff": self.backoff.describe(),
            },
            "journal": journal,
            "counters": counters,
            "spans": spans,
            "cache": cache,
        }

    async def close(self) -> None:
        """Graceful drain: refuse new submissions, let running attempts
        finish, leave still-queued jobs journaled for the next start, and
        compact + close the journal.  Idempotent."""
        self._closed = True
        # Undispatched jobs stay journaled as queued; they replay next start.
        self._queue.clear()
        while True:
            pending = [task for task in self._tasks if not task.done()]
            if not pending:
                break
            await asyncio.gather(*pending, return_exceptions=True)
        if self._journal is not None:
            try:
                self._journal.compact()
            except Exception:
                self.recorder.counter("service.journal_errors")
            self._journal.close()
