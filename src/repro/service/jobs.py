"""The asynchronous job queue behind the experiment service.

:class:`JobManager` owns all mutable service state and runs **entirely on
one asyncio event loop**; experiment execution happens on a bounded thread
pool via :func:`~repro.api.backends.execute_payload` (the same worker entry
point every :mod:`repro.api` backend uses), so results are bit-identical to
an inline :meth:`repro.api.Session.run` at the same seed.

Single-flight
-------------
Jobs are deduplicated by the request's **canonical cache key** (the same
spec-derived key the result cache uses).  While a job for a key is in
flight, every further submission of an identical request joins it as a
subscriber instead of executing again: N concurrent identical submissions →
exactly one execution, N subscribers, N bit-identical results.  Once a job
reaches a terminal state the key leaves the in-flight table — subsequent
submissions are served by the result cache instead.

Lifecycle and events
--------------------
A job moves ``queued → running → done | failed``; a cache hit at submission
creates the job directly in ``done`` (``from_cache=True``).  Progress is
recorded as an ordered event log per job, using the **same taxonomy** as
:class:`repro.api.ProgressEvent`: ``start`` when execution begins,
``cached`` (terminal, the only event) for a cache hit, ``done`` on success —
always emitted *after* the result is persisted to the cache — plus
``failed`` for the error path.  :meth:`JobManager.events` replays the log
and then follows it live, which is what the HTTP layer streams as SSE.

Telemetry
---------
The manager keeps its own :class:`~repro.obs.TraceRecorder`.  Each
execution runs under a fresh per-thread recorder whose export — a
``service.queue_wait`` span (time between submission and a worker picking
the job up) and a ``service.execute`` span wrapping the run and the cache
write — is merged into the manager's recorder on the loop thread, so
``service.execute`` span counts are an exact execution count (the
single-flight acceptance check).
"""

from __future__ import annotations

import asyncio
import itertools
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import AsyncIterator, Dict, List, Optional, Tuple, Union

from repro.api.backends import execute_payload
from repro.api.session import RunReport, RunRequest
from repro.api.wire import WIRE_SCHEMA
from repro.engine.cache import ResultCache
from repro.errors import JobNotFound, ServiceUnavailable, error_payload
from repro.harness.registry import REGISTRY, ExperimentRegistry, SpecValidationError
from repro.harness.results import ExperimentResult
from repro.obs import Recorder, Span, TraceRecorder, use_recorder

__all__ = ["JobState", "Job", "JobManager"]


class JobState:
    """The four job states (plain strings, wire-stable)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"

    TERMINAL = (DONE, FAILED)


class Job:
    """One deduplicated unit of work: a request, its state, its event log."""

    def __init__(self, job_id: str, request: RunRequest, cache_key: str) -> None:
        self.id = job_id
        self.request = request
        self.cache_key = cache_key
        self.state = JobState.QUEUED
        self.from_cache = False
        self.subscribers = 1
        self.report: Optional[RunReport] = None
        self.error: Optional[Dict[str, object]] = None
        self.error_status = 500
        self.created_at = time.time()
        self.queue_wait_seconds: Optional[float] = None
        self.events: List[Dict[str, object]] = []
        self.task: Optional[asyncio.Task] = None
        # Futures of event-stream consumers waiting for the next event; all
        # access is confined to the event loop thread, so no lock is needed.
        self._waiters: List[asyncio.Future] = []

    @property
    def terminal(self) -> bool:
        return self.state in JobState.TERMINAL

    # -- event log (loop thread only) ---------------------------------- #
    def emit(self, kind: str, **fields: object) -> None:
        """Append one progress event and wake every waiting stream."""
        event: Dict[str, object] = {
            "schema": WIRE_SCHEMA,
            "kind": "event",
            "event": kind,
            "job_id": self.id,
            "experiment_id": self.request.experiment_id,
            "state": self.state,
        }
        event.update(fields)
        self.events.append(event)
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            if not waiter.done():
                waiter.set_result(None)

    async def next_event(self, index: int) -> None:
        """Return once ``events[index]`` exists (loop thread only)."""
        while len(self.events) <= index:
            waiter = asyncio.get_running_loop().create_future()
            self._waiters.append(waiter)
            await waiter

    # -- wire form ------------------------------------------------------ #
    def snapshot(self, deduplicated: Optional[bool] = None) -> Dict[str, object]:
        """The job's wire record (the ``kind="job"`` envelope of the HTTP
        layer); ``deduplicated`` is per-submission provenance."""
        record: Dict[str, object] = {
            "schema": WIRE_SCHEMA,
            "kind": "job",
            "job_id": self.id,
            "experiment_id": self.request.experiment_id,
            "preset": self.request.preset,
            "state": self.state,
            "cache_key": self.cache_key,
            "from_cache": self.from_cache,
            "subscribers": self.subscribers,
            "error": dict(self.error) if self.error is not None else None,
        }
        if deduplicated is not None:
            record["deduplicated"] = deduplicated
        return record


class JobManager:
    """Single-flight job execution over a bounded worker pool.

    Parameters mirror :class:`repro.api.Session` where they overlap:
    ``registry`` resolves experiment ids, ``cache`` is ``True`` (default
    location) / a path / a :class:`ResultCache` / ``None`` (no caching), and
    ``max_workers`` bounds the executor threads (default 4).  ``recorder``
    is the manager's telemetry sink (a fresh :class:`TraceRecorder` when
    omitted — the service always records, that is what ``/metrics`` reads).
    """

    def __init__(
        self,
        registry: Optional[ExperimentRegistry] = None,
        cache: Union[bool, None, str, Path, ResultCache] = True,
        max_workers: Optional[int] = None,
        recorder: Optional[Recorder] = None,
    ) -> None:
        self.registry = registry if registry is not None else REGISTRY
        if isinstance(cache, ResultCache):
            self.cache: Optional[ResultCache] = cache
        elif cache is True:
            self.cache = ResultCache()
        elif cache in (None, False):
            self.cache = None
        else:
            self.cache = ResultCache(Path(cache))
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be positive (or None for the default)")
        self.max_workers = max_workers if max_workers is not None else 4
        self.recorder: Recorder = recorder if recorder is not None else TraceRecorder()
        self._executor = ThreadPoolExecutor(
            max_workers=self.max_workers, thread_name_prefix="repro-service"
        )
        self._jobs: Dict[str, Job] = {}
        self._inflight: Dict[str, Job] = {}
        self._ids = itertools.count(1)
        self._closed = False

    # ------------------------------------------------------------------ #
    def _resolve_key(self, request: RunRequest) -> str:
        try:
            spec = self.registry[request.experiment_id]
        except KeyError:
            raise SpecValidationError(
                f"unknown experiment {request.experiment_id!r}; available: "
                f"{', '.join(self.registry)}"
            ) from None
        return spec.cache_key(request.kwargs)

    async def submit(self, request: RunRequest) -> Tuple[Job, bool]:
        """Submit one request; returns ``(job, deduplicated)``.

        ``deduplicated`` is ``True`` when the submission joined an in-flight
        job for the same canonical key instead of creating one.  A cache hit
        creates the job directly in the terminal ``done`` state.  Raises
        :class:`ServiceUnavailable` once the manager is draining and
        :class:`SpecValidationError` for unknown experiments / parameters.
        """
        if self._closed:
            raise ServiceUnavailable("service is draining; no new jobs accepted")
        self.recorder.counter("service.submissions")
        key = self._resolve_key(request)

        inflight = self._inflight.get(key)
        if inflight is not None and not inflight.terminal:
            inflight.subscribers += 1
            self.recorder.counter("service.deduplicated")
            return inflight, True

        job = Job(f"j{next(self._ids):06d}-{key[:8]}", request, key)
        self._jobs[job.id] = job

        if self.cache is not None:
            # Probe synchronously on the loop thread (a small JSON read) so
            # two immediate identical submissions cannot both miss; the
            # manager's recorder sees the cache.lookup span.
            with use_recorder(self.recorder):
                payload = self.cache.get(key)
            if payload is not None:
                try:
                    result = ExperimentResult.from_dict(payload)
                except (KeyError, TypeError, ValueError):
                    pass  # foreign/stale payload shape: fall through to execute
                else:
                    job.report = RunReport(
                        request=request,
                        result=result,
                        from_cache=True,
                        cache_path=self.cache.path_for(key),
                    )
                    job.from_cache = True
                    job.state = JobState.DONE
                    self.recorder.counter("service.cache_hits")
                    job.emit("cached", verdict=result.verdict)
                    return job, False

        self._inflight[key] = job
        job.task = asyncio.create_task(self._run(job))
        return job, False

    # ------------------------------------------------------------------ #
    def _mark_started(self, job: Job, queue_wait: float) -> None:
        """Scheduled threadsafe by the worker the moment it picks the job
        up: the ``start`` event strictly precedes ``done``/``failed``."""
        if job.terminal:  # pragma: no cover - defensive
            return
        job.state = JobState.RUNNING
        job.queue_wait_seconds = queue_wait
        job.emit("start")

    def _execute(self, job: Job, loop: asyncio.AbstractEventLoop, submitted: float):
        """The worker-thread half: run the experiment under a fresh recorder
        and persist the result before returning (cache-write-before-done)."""
        queue_wait = time.perf_counter() - submitted
        loop.call_soon_threadsafe(self._mark_started, job, queue_wait)
        recorder = TraceRecorder()
        wait_span = Span(
            "service.queue_wait", {"job_id": job.id, "experiment_id": job.request.experiment_id}
        )
        wait_span.started_at = job.created_at
        wait_span.wall_seconds = queue_wait
        recorder.spans.append(wait_span)
        started = time.perf_counter()
        with use_recorder(recorder):
            with recorder.span(
                "service.execute",
                job_id=job.id,
                experiment_id=job.request.experiment_id,
                cache_key=job.cache_key,
            ) as span:
                record = execute_payload(job.request.to_payload(), self.registry)
                result = ExperimentResult.from_dict(record)
                cache_path = None
                if self.cache is not None:
                    cache_path = self.cache.put(
                        job.cache_key,
                        record,
                        key_fields={
                            "experiment_id": job.request.experiment_id,
                            "parameters": job.request.kwargs,
                            "preset": job.request.preset,
                        },
                    )
                span.annotate(verdict=result.verdict, cached=cache_path is not None)
        duration = time.perf_counter() - started
        return result, cache_path, duration, queue_wait, recorder.export()

    async def _run(self, job: Job) -> None:
        loop = asyncio.get_running_loop()
        submitted = time.perf_counter()
        try:
            outcome = await loop.run_in_executor(
                self._executor, self._execute, job, loop, submitted
            )
        except Exception as error:
            status, payload = error_payload(error)
            job.error = payload
            job.error_status = status
            job.state = JobState.FAILED
            self.recorder.counter("service.failed")
            job.emit("failed", error=dict(payload))
        else:
            result, cache_path, duration, queue_wait, export = outcome
            # Merge the worker's trace on the loop thread — the recorder is
            # only ever mutated here, so span counts stay exact.
            if isinstance(self.recorder, TraceRecorder):
                self.recorder.merge(export)
            self.recorder.counter("service.executions")
            self.recorder.histogram("service.queue_wait_seconds", queue_wait)
            job.report = RunReport(
                request=job.request,
                result=result,
                from_cache=False,
                cache_path=cache_path,
                duration_seconds=duration,
            )
            job.state = JobState.DONE
            job.emit("done", verdict=result.verdict)
        finally:
            if self._inflight.get(job.cache_key) is job:
                del self._inflight[job.cache_key]

    # ------------------------------------------------------------------ #
    def get(self, job_id: str) -> Job:
        """The job for an id, or raise :class:`JobNotFound`."""
        try:
            return self._jobs[job_id]
        except KeyError:
            raise JobNotFound(job_id) from None

    async def wait(self, job_id: str) -> Job:
        """Return the job once it is terminal."""
        job = self.get(job_id)
        index = 0
        while not job.terminal:
            await job.next_event(index)
            index = len(job.events)
        return job

    async def events(self, job_id: str) -> AsyncIterator[Dict[str, object]]:
        """Replay a job's event log from the beginning, then follow it live
        until a terminal event (``cached``/``done``/``failed``) is yielded."""
        job = self.get(job_id)
        index = 0
        while True:
            while index < len(job.events):
                event = job.events[index]
                index += 1
                yield dict(event)
                if event["event"] in ("cached", "done", "failed"):
                    return
            await job.next_event(index)

    def jobs_by_state(self) -> Dict[str, int]:
        counts = {state: 0 for state in (JobState.QUEUED, JobState.RUNNING, *JobState.TERMINAL)}
        for job in self._jobs.values():
            counts[job.state] = counts.get(job.state, 0) + 1
        return counts

    def metrics(self) -> Dict[str, object]:
        """The ``/metrics`` summary: job states, telemetry counters,
        per-span aggregates, and the result cache's traffic and disk shape."""
        spans: Dict[str, Dict[str, float]] = {}
        counters: Dict[str, int] = {}
        if isinstance(self.recorder, TraceRecorder):
            counters = dict(self.recorder.counters)
            for span in self.recorder.iter_spans():
                entry = spans.setdefault(span.name, {"count": 0, "wall_seconds": 0.0})
                entry["count"] += 1
                entry["wall_seconds"] += span.wall_seconds
        cache: Dict[str, object] = {"enabled": self.cache is not None}
        if self.cache is not None:
            cache["stats"] = self.cache.stats.as_dict()
            cache["disk"] = self.cache.describe()
        return {
            "schema": WIRE_SCHEMA,
            "kind": "metrics",
            "jobs": self.jobs_by_state(),
            "inflight": len(self._inflight),
            "counters": counters,
            "spans": spans,
            "cache": cache,
        }

    async def close(self) -> None:
        """Drain: refuse new submissions, wait for in-flight jobs, release
        the worker pool.  Idempotent."""
        self._closed = True
        tasks = [job.task for job in self._jobs.values() if job.task is not None]
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        self._executor.shutdown(wait=True)
