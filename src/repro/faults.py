"""Deterministic fault injection for the experiment service.

Recovery paths are only trustworthy if they are *provable*, and provable
means reproducible: the chaos suite must be able to replay the exact same
fault sequence on every run.  :class:`FaultPlan` is that harness — a
schedule of faults attached to **named sites** in the stack:

=====================  ====================================================
``worker.execute``     checked by the job manager's worker thread right
                       before an experiment runs (exceptions, stalls)
``journal.append``     checked by :class:`~repro.service.journal.JobJournal`
                       before a record is written (torn tails, I/O errors)
``sse.stream``         checked by the HTTP layer before each SSE frame
                       (connection drops mid-stream)
=====================  ====================================================

Faults come in two flavors, both deterministic:

* **Explicit** — ``plan.fail(site, times=2)`` injects on hits 0 and 1 of
  that site (``after=`` shifts the window).  Hit counting is per-site, so
  the schedule is independent of interleaving across sites.
* **Probabilistic** — ``plan.probability(site, 0.3)`` fires on hit *n* iff
  ``seeded_unit(seed, site, n) < p``.  The draw depends only on
  ``(seed, site, n)`` — not on call order, thread timing, or a shared RNG —
  so two plans with the same seed produce the *same* injected-fault
  sequence (the acceptance criterion of the chaos suite).

Every decision (fired or not) is appended to :attr:`FaultPlan.log`, which is
what tests assert against.  Injection points call :meth:`FaultPlan.check`
(returns the action or ``None``) or the convenience :meth:`FaultPlan.fire`
(raises :class:`InjectedFault` / sleeps a stall inline); torn-tail and
connection-drop actions are returned to the caller because only the journal
and the HTTP layer know how to tear their own media.

:func:`tear_journal_tail` truncates a journal file deterministically — the
standing simulation of a crash mid-append.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.retry import seeded_unit

__all__ = ["FaultAction", "FaultPlan", "InjectedFault", "tear_journal_tail"]


class InjectedFault(RuntimeError):
    """An exception raised by the harness (classified retryable, like any
    foreign worker crash)."""

    retryable = True


@dataclass(frozen=True)
class FaultAction:
    """What a site should do on one hit: ``kind`` is ``"fail"`` (raise),
    ``"stall"`` (sleep ``seconds``), ``"tear"`` (write only ``keep`` bytes of
    the record), or ``"drop"`` (sever the connection)."""

    kind: str
    seconds: float = 0.0
    keep: int = 0
    message: str = ""


@dataclass
class _Rule:
    action: FaultAction
    after: int = 0
    times: int = 1
    probability: Optional[float] = None

    def applies(self, seed: int, site: str, hit: int) -> bool:
        if self.probability is not None:
            return seeded_unit(seed, site, hit) < self.probability
        return self.after <= hit < self.after + self.times


@dataclass
class FaultPlan:
    """A seeded, site-addressed schedule of injected faults."""

    seed: int = 0
    _rules: Dict[str, List[_Rule]] = field(default_factory=dict)
    _hits: Dict[str, int] = field(default_factory=dict)
    _log: List[Tuple[str, int, str]] = field(default_factory=list)
    _lock: threading.Lock = field(default_factory=threading.Lock)

    # -- schedule construction ------------------------------------------ #
    def _add(self, site: str, rule: _Rule) -> "FaultPlan":
        self._rules.setdefault(site, []).append(rule)
        return self

    def fail(
        self, site: str, times: int = 1, after: int = 0, message: str = ""
    ) -> "FaultPlan":
        """Raise :class:`InjectedFault` on ``times`` consecutive hits."""
        action = FaultAction("fail", message=message or f"injected fault at {site}")
        return self._add(site, _Rule(action, after=after, times=times))

    def stall(
        self, site: str, seconds: float, times: int = 1, after: int = 0
    ) -> "FaultPlan":
        """Sleep ``seconds`` (an execution stall) on matching hits."""
        return self._add(site, _Rule(FaultAction("stall", seconds=seconds), after, times))

    def tear(self, site: str, keep: int = 8, times: int = 1, after: int = 0) -> "FaultPlan":
        """Write only the first ``keep`` bytes of the record (a torn tail)."""
        return self._add(site, _Rule(FaultAction("tear", keep=keep), after, times))

    def drop(self, site: str, times: int = 1, after: int = 0) -> "FaultPlan":
        """Sever the connection on matching hits (SSE/stream sites)."""
        return self._add(site, _Rule(FaultAction("drop"), after, times))

    def probability(self, site: str, p: float, kind: str = "fail") -> "FaultPlan":
        """Fire ``kind`` on hit *n* iff ``seeded_unit(seed, site, n) < p`` —
        deterministic in ``(seed, site, n)``, independent of call order."""
        if not 0.0 <= p <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        action = FaultAction(kind, message=f"injected fault at {site}")
        return self._add(site, _Rule(action, probability=p))

    # -- the injection points ------------------------------------------- #
    def check(self, site: str) -> Optional[FaultAction]:
        """Record one hit of a site; the action to inject, or ``None``.

        Thread-safe: worker threads and the event loop share one plan.
        """
        with self._lock:
            hit = self._hits.get(site, 0)
            self._hits[site] = hit + 1
            for rule in self._rules.get(site, ()):
                if rule.applies(self.seed, site, hit):
                    self._log.append((site, hit, rule.action.kind))
                    return rule.action
            self._log.append((site, hit, "pass"))
            return None

    def fire(self, site: str) -> Optional[FaultAction]:
        """Like :meth:`check`, but executes raise/stall actions inline.

        ``tear``/``drop`` actions are returned for the caller to apply (the
        journal tears its own write; the HTTP layer drops its own socket).
        """
        action = self.check(site)
        if action is None:
            return None
        if action.kind == "fail":
            raise InjectedFault(action.message)
        if action.kind == "stall":
            time.sleep(action.seconds)
            return action
        return action

    # -- inspection ------------------------------------------------------ #
    @property
    def log(self) -> Tuple[Tuple[str, int, str], ...]:
        """Every decision taken: ``(site, hit_index, action_kind)`` — the
        sequence two same-seed plans must agree on."""
        with self._lock:
            return tuple(self._log)

    @property
    def fired(self) -> Tuple[Tuple[str, int, str], ...]:
        """The injected subset of :attr:`log` (``action_kind != "pass"``)."""
        return tuple(entry for entry in self.log if entry[2] != "pass")

    def hits(self, site: str) -> int:
        with self._lock:
            return self._hits.get(site, 0)


def tear_journal_tail(path: Path, drop_bytes: int = 7) -> int:
    """Truncate a journal file's tail by ``drop_bytes`` — the canonical
    simulation of a crash mid-append.  Returns the new size.  Truncating an
    empty (or missing) journal is a no-op returning 0."""
    path = Path(path)
    if not path.is_file():
        return 0
    size = path.stat().st_size
    new_size = max(0, size - max(1, drop_bytes))
    with path.open("rb+") as handle:
        handle.truncate(new_size)
    return new_size
