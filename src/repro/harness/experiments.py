"""The paper's quantitative claims as runnable experiments (E1–E10).

Each function reproduces one entry of DESIGN.md's experiment index and
returns an :class:`~repro.harness.results.ExperimentResult` whose rows are
what the corresponding bench prints and whose ``matches_paper`` verdict
applies the experiment's acceptance criterion.  The functions take their
workload sizes and trial counts as parameters so the same code runs at full
scale from ``benchmarks/`` and at toy scale from the integration tests.

The paper has no numbered tables or figures; the claims reproduced here are
the quantitative statements of the text (guarantees, probability windows,
lower-bound shapes, and the error-amplification bounds of the proof of
Theorem 1).  EXPERIMENTS.md records paper-vs-measured for each.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from repro.algorithms.coloring.cole_vishkin import (
    ColeVishkinConstructor,
    oriented_cycle_network,
)
from repro.algorithms.coloring.greedy import greedy_coloring_by_identity
from repro.algorithms.coloring.random_coloring import (
    RandomColoringConstructor,
    expected_proper_fraction,
)
from repro.algorithms.coloring.reduction import ColorReductionConstructor
from repro.algorithms.matching.proposal_matching import ProposalMatchingConstructor
from repro.algorithms.mis.luby import LubyMISConstructor
from repro.analysis.logstar import cole_vishkin_round_bound, log_star
from repro.core.classes import amos_separation_report
from repro.core.construction import BallConstructor, estimate_success_probability
from repro.core.decision import (
    AmosDecider,
    AmplifiedResilientDecider,
    LocalCheckerDecider,
    RandomizedDecider,
    ResilientDecider,
    golden_ratio_guarantee,
)
from repro.core.derandomization import (
    amplification_disjoint_union,
    amplification_glued,
    far_acceptance_probability,
    mu_from_guarantee,
    nu_disconnected,
)
from repro.core.languages import SELECTED, Amos, Configuration
from repro.core.lcl import (
    MaximalIndependentSet,
    MaximalMatching,
    PredicateLCL,
    ProperColoring,
)
from repro.core.order_invariant import (
    enumerate_order_invariant_cycle_algorithms,
    monochromatic_core,
)
from repro.core.relaxations import eps_slack, f_resilient
from repro.engine.construct import (
    batched_bad_counts,
    bernoulli_output,
    resolve_construction_engine,
)
from repro.graphs.families import cycle_network, path_network
from repro.graphs.random_graphs import random_regular_network
from repro.harness.results import ExperimentResult
from repro.local.algorithm import FunctionBallAlgorithm
from repro.local.randomness import TapeFactory
from repro.local.simulator import run_ball_algorithm
from repro.stats import PrecisionTarget, ProbabilityEstimate, tri_all

__all__ = [
    "experiment_e1_amos_decider",
    "experiment_e2_eps_slack_random_coloring",
    "experiment_e3_resilient_lower_bound",
    "experiment_e4_logstar_coloring",
    "experiment_e5_resilient_decider",
    "experiment_e6_error_amplification",
    "experiment_e7_separations",
    "experiment_e8_slack_vs_resilient",
    "experiment_e9_far_acceptance",
    "experiment_e10_baselines",
    "ALL_EXPERIMENTS",
]


# --------------------------------------------------------------------------- #
# Shared workload helpers
# --------------------------------------------------------------------------- #
def _amos_configuration(network, selected_count: int) -> Configuration:
    nodes = network.nodes()
    spread = max(1, len(nodes) // max(selected_count, 1))
    selected = {nodes[(index * spread) % len(nodes)] for index in range(selected_count)}
    # ``spread`` may collide on tiny graphs; top up deterministically.
    iterator = iter(nodes)
    while len(selected) < selected_count:
        selected.add(next(iterator))
    return Configuration(
        network, {node: (SELECTED if node in selected else "") for node in nodes}
    )


def _cycle_coloring_with_bad_balls(n: int, bad_balls: int) -> Configuration:
    """A 3-coloring of C_n (n divisible by 3) with exactly ``bad_balls`` bad
    balls, planted as ``bad_balls // 2`` isolated conflicting edges (bad_balls
    must be even)."""
    if n % 3 != 0:
        raise ValueError("use a cycle length divisible by 3")
    if bad_balls % 2 != 0:
        raise ValueError("bad balls come in pairs (one conflicting edge each)")
    network = cycle_network(n)
    nodes = network.nodes()
    colors = {node: (index % 3) + 1 for index, node in enumerate(nodes)}
    conflicts = bad_balls // 2
    if conflicts:
        step = max(3, n // conflicts)
        for planted in range(conflicts):
            index = planted * step
            colors[nodes[index]] = colors[nodes[index + 1]]
    return Configuration(network, colors)


def _cycle_coloring_with_monochromatic_run(n: int, run_length: int) -> Configuration:
    """A 3-coloring of C_n (n divisible by 3) that is proper outside one
    contiguous monochromatic run of ``run_length`` nodes.

    Unlike :func:`_cycle_coloring_with_bad_balls` (isolated conflicting
    edges, at most ``2n/3`` bad balls), the dense run plants ``run_length``
    bad balls for any ``2 ≤ run_length ≤ n − 3`` — enough to push the bad
    fraction above any slack ε < 1.
    """
    if n % 3 != 0:
        raise ValueError("use a cycle length divisible by 3")
    if run_length == 0:
        return _cycle_coloring_with_bad_balls(n, 0)
    if not 2 <= run_length <= n - 3:
        raise ValueError("the monochromatic run must have between 2 and n - 3 nodes")
    network = cycle_network(n)
    nodes = network.nodes()
    colors = {node: (index % 3) + 1 for index, node in enumerate(nodes)}
    # Recolor the window [1, run_length] to a constant color differing from
    # both boundary neighbours, so the bad balls are exactly the window.
    boundary_colors = {colors[nodes[0]], colors[nodes[run_length + 1]]}
    run_color = min({1, 2, 3} - boundary_colors)
    for index in range(1, run_length + 1):
        colors[nodes[index]] = run_color
    return Configuration(network, colors)


# --------------------------------------------------------------------------- #
# E1 — the amos golden-ratio decider
# --------------------------------------------------------------------------- #
def _precision_target(precision: float, confidence: float, trials: int):
    """The experiment-level stopping rule: ``precision`` is the CI
    half-width target (0 disables adaptive stopping entirely — the fixed
    trial budget then applies bit-identically to the pre-stats layer), and
    ``trials`` is demoted from a prescription to a cap."""
    if precision <= 0.0:
        return None
    return PrecisionTarget(
        half_width=precision,
        confidence=confidence,
        min_trials=min(100, trials),
        max_trials=trials,
    )


def _apply_ci_verdict(result: ExperimentResult, verdicts: Sequence[Optional[bool]]) -> None:
    """Fold per-row tri-state verdicts into the result: any refuted criterion
    fails; otherwise any CI straddling its threshold leaves the experiment
    UNRESOLVED (ask for a tighter ``precision``) instead of flapping."""
    combined = tri_all(verdicts)
    result.matches_paper = combined
    result.unresolved = combined is None


def _record_estimate(
    result: ExperimentResult, estimate: ProbabilityEstimate
) -> ProbabilityEstimate:
    """Accumulate an adaptive estimate's provenance on the result record:
    total trials consumed and the binding (widest) interval."""
    result.trials_used = (result.trials_used or 0) + estimate.trials
    if result.ci_low is None or estimate.half_width > (result.ci_high - result.ci_low) / 2.0:
        result.ci_low, result.ci_high = estimate.ci_low, estimate.ci_high
    return estimate


def experiment_e1_amos_decider(
    sizes: Sequence[int] = (12, 40),
    selected_counts: Sequence[int] = (0, 1, 2, 3),
    trials: int = 3_000,
    seed: int = 0,
    engine: str = "auto",
    precision: float = 0.0,
    confidence: float = 0.99,
) -> ExperimentResult:
    """E1: the zero-round randomized decider for amos has guarantee ≈ 0.618.

    With ``precision > 0`` every acceptance probability is estimated under
    the :class:`~repro.stats.PrecisionTarget` sequential-stopping rule
    (half-width ``precision`` at ``confidence``, ``trials`` as the cap) and
    the per-row criteria become CI-aware: a row whose interval straddles its
    threshold leaves the experiment UNRESOLVED instead of flapping.
    """
    result = ExperimentResult(
        experiment_id="E1",
        title="amos decided in 0 rounds with guarantee p = (√5−1)/2",
        paper_claim=(
            "Section 2.3.1: non-selected nodes accept; selected nodes accept with "
            "probability p = (√5−1)/2 ≈ 0.618; yes-instances accepted w.p. ≥ p, "
            "no-instances rejected w.p. ≥ 1 − p² = p"
        ),
        parameters={
            "sizes": list(sizes),
            "selected_counts": list(selected_counts),
            "trials": trials,
            "engine": engine,
            "precision": precision,
            "confidence": confidence,
        },
    )
    p = golden_ratio_guarantee()
    decider = AmosDecider()
    target = _precision_target(precision, confidence, trials)
    ok = True
    verdicts: List[Optional[bool]] = []
    for kind, factory in (("cycle", cycle_network), ("path", path_network)):
        for n in sizes:
            network = factory(n)
            for selected in selected_counts:
                configuration = _amos_configuration(network, selected)
                member = Amos().contains(configuration)
                if target is not None:
                    estimate = _record_estimate(
                        result,
                        decider.acceptance_estimate(
                            configuration,
                            trials=trials,
                            seed=seed,
                            engine=engine,
                            precision=target,
                        ),
                    )
                    acceptance = estimate.estimate
                    if selected == 0:
                        expected = 1.0
                        criterion: Optional[bool] = acceptance == 1.0
                    elif selected == 1:
                        expected = p
                        criterion = estimate.interval.tri_between(p - 0.05, p + 0.05)
                    else:
                        expected = p**selected
                        criterion = estimate.interval.tri_at_most(1.0 - p + 0.05)
                    verdicts.append(criterion)
                    result.add_row(
                        graph=f"{kind}-{n}",
                        selected=selected,
                        member=member,
                        acceptance=acceptance,
                        expected_acceptance=expected,
                        within_guarantee=criterion,
                        ci_low=estimate.ci_low,
                        ci_high=estimate.ci_high,
                        trials_used=estimate.trials,
                    )
                    continue
                acceptance = decider.acceptance_probability(
                    configuration, trials=trials, seed=seed, engine=engine
                )
                if selected == 0:
                    expected, criterion = 1.0, acceptance == 1.0
                elif selected == 1:
                    expected, criterion = p, abs(acceptance - p) < 0.05
                else:
                    expected, criterion = p**selected, (1 - acceptance) >= p - 0.05
                ok = ok and criterion
                result.add_row(
                    graph=f"{kind}-{n}",
                    selected=selected,
                    member=member,
                    acceptance=acceptance,
                    expected_acceptance=expected,
                    within_guarantee=criterion,
                )
    if target is not None:
        _apply_ci_verdict(result, verdicts)
    else:
        result.matches_paper = ok
    result.notes = (
        "acceptance on k≥2 selected nodes is p^k exactly (independent coins), "
        "always below 1 − p as required"
    )
    return result


# --------------------------------------------------------------------------- #
# E2 — ε-slack is solved by the trivial zero-round random coloring
# --------------------------------------------------------------------------- #
def experiment_e2_eps_slack_random_coloring(
    sizes: Sequence[int] = (30, 100, 300, 1000),
    eps_values: Sequence[float] = (0.7, 0.62, 0.58),
    trials: int = 200,
    decider_trials: int = 1200,
    repetitions: int = 3,
    seed: int = 0,
    engine: str = "auto",
) -> ExperimentResult:
    """E2: random 3-coloring solves the ε-slack relaxation with probability → 1,
    and the relaxation itself is decided by the amplified Corollary 1 decider
    (a multi-draw vote program, run through the engine)."""
    result = ExperimentResult(
        experiment_id="E2",
        title="ε-slack 3-coloring solved by the 0-round random coloring",
        paper_claim=(
            "Section 1.1: every node picking a uniformly random color guarantees, "
            "with constant probability, that a 1 − ε fraction of the nodes is "
            "properly colored (expected bad fraction on the cycle = 5/9 ≈ 0.556); "
            "for fixed n the relaxation is the ⌊εn⌋-resilient relaxation, so the "
            "Corollary 1 decider applies to it"
        ),
        parameters={
            "sizes": list(sizes),
            "eps_values": list(eps_values),
            "trials": trials,
            "decider_trials": decider_trials,
            "repetitions": repetitions,
            "engine": engine,
        },
    )
    constructor = RandomColoringConstructor(3)
    base = ProperColoring(3)
    expected_bad = 1 - expected_proper_fraction(3, 2)
    for n in sizes:
        network = cycle_network(n)
        # Mean bad fraction over a handful of runs (linearity of expectation check).
        mean_bad = 0.0
        probe_runs = min(trials, 50)
        probe_mode = resolve_construction_engine(engine, constructor)
        probe_counts = (
            batched_bad_counts(
                constructor, base, network, probe_runs,
                seed_base=seed, salt="e2-probe", mode=probe_mode,
            )
            if probe_mode != "off"
            else None
        )
        if probe_counts is not None:
            # Engine probe: exact mode replays TapeFactory(seed + run,
            # "e2-probe") bit for bit, and the accumulation below mirrors the
            # reference loop's order, so the float is identical too.  Inside
            # a fused sweep the counts come from the shared matrix.
            for count in probe_counts:
                mean_bad += (int(count) / n) / probe_runs
        else:
            for run in range(probe_runs):
                configuration = constructor.configuration(
                    network, tape_factory=TapeFactory(seed + run, salt="e2-probe")
                )
                mean_bad += base.fraction_bad(configuration) / probe_runs
        for eps in eps_values:
            relaxed = eps_slack(base, eps)
            estimate = estimate_success_probability(
                constructor, relaxed, [network], trials=trials, seed=seed, engine=engine
            )
            result.add_row(
                n=n,
                eps=eps,
                success_probability=estimate.success_probability,
                mean_bad_fraction=mean_bad,
                expected_bad_fraction=expected_bad,
            )
    # Verdict: at the largest size, any slack comfortably above the expected
    # bad fraction (5/9) is achieved with probability close to 1, and the
    # measured mean bad fraction matches 5/9.
    largest = max(sizes)
    final_rows = [row for row in result.rows if row["n"] == largest]
    ok = all(
        row["success_probability"] > 0.85
        for row in final_rows
        if row["eps"] >= expected_bad + 0.06
    ) and all(abs(row["mean_bad_fraction"] - expected_bad) < 0.08 for row in final_rows)

    # Decider cross-check (the engine-backed multi-draw path): for fixed n
    # the ε-slack relaxation *is* the f-resilient relaxation with f = ⌊εn⌋,
    # so the amplified Corollary 1 decider decides it — accepting planted
    # yes-instances (bad fraction well below ε) w.p. > 1/2 and rejecting
    # planted no-instances (bad fraction above ε) w.p. > 1/2, matching the
    # closed form p^{|F(G)|} per instance.
    decider_n = largest if largest % 3 == 0 else 3 * (largest // 3)
    # 3.5 standard deviations of a worst-case Bernoulli estimate, so the
    # closed-form comparison stays robust at any trial budget.
    decider_tolerance = 3.5 * math.sqrt(0.25 / decider_trials)
    for eps in eps_values:
        allowed = int(eps * decider_n)
        if allowed < 1 or decider_n < 12:
            continue
        decider = AmplifiedResilientDecider(base, f=allowed, repetitions=repetitions)
        yes_run = max(2, (6 * allowed) // 10)
        no_run = min(decider_n - 3, max(allowed + 2, (13 * allowed) // 10))
        scenarios = [("yes", yes_run)]
        if no_run > allowed:
            # Only plant the no-instance when the cycle can actually hold
            # more than ⌊εn⌋ bad balls; otherwise the row would silently be
            # a second yes-instance.
            scenarios.append(("no", no_run))
        for scenario, run_length in scenarios:
            configuration = _cycle_coloring_with_monochromatic_run(decider_n, run_length)
            actual_bad = base.violation_count(configuration)
            member = actual_bad <= allowed
            acceptance = decider.acceptance_probability(
                configuration, trials=decider_trials, seed=seed, engine=engine
            )
            theoretical = decider.theoretical_acceptance(actual_bad)
            success = acceptance if member else 1.0 - acceptance
            ok = ok and abs(acceptance - theoretical) < decider_tolerance and success > 0.5
            result.add_row(
                n=decider_n,
                eps=eps,
                scenario=f"decider/{scenario}",
                allowed_bad=allowed,
                bad_balls=actual_bad,
                member=member,
                decider_acceptance=acceptance,
                theoretical_acceptance=theoretical,
                success_probability=success,
            )
    result.matches_paper = ok
    result.notes = (
        "decider rows run the amplified (multi-draw) Corollary 1 decider with "
        f"f = ⌊εn⌋ and k={repetitions} coins per bad ball through the engine"
    )
    return result


# --------------------------------------------------------------------------- #
# E3 — no order-invariant O(1) algorithm solves f-resilient coloring
# --------------------------------------------------------------------------- #
def experiment_e3_resilient_lower_bound(
    n: int = 24,
    radii: Sequence[int] = (0, 1),
    f_values: Sequence[int] = (1, 2, 4),
    trials: int = 1_200,
    repetitions: int = 3,
    seed: int = 0,
    engine: str = "auto",
) -> ExperimentResult:
    """E3: every order-invariant constant-round algorithm fails f-resilient
    3-coloring on the consecutively-labelled cycle — and the amplified
    Corollary 1 decider (engine-run multi-draw vote programs) certifies the
    failure by rejecting the best achievable output w.p. > 1/2."""
    result = ExperimentResult(
        experiment_id="E3",
        title="f-resilient 3-coloring defeats every order-invariant O(1) algorithm",
        paper_claim=(
            "Section 4: on the cycle with consecutive identities, any order-invariant "
            "t-round algorithm outputs the same color at ≥ n − (2t−1) nodes, hence at "
            "least that many bad balls minus boundary effects — far above any fixed f; "
            "the relaxation stays decidable (Corollary 1) although not constructible"
        ),
        parameters={
            "n": n,
            "radii": list(radii),
            "f_values": list(f_values),
            "trials": trials,
            "repetitions": repetitions,
            "engine": engine,
        },
    )
    network = cycle_network(n, ids="consecutive")
    base = ProperColoring(3)
    ok = True
    for radius in radii:
        algorithms = list(enumerate_order_invariant_cycle_algorithms(radius, [1, 2, 3]))
        min_bad = math.inf
        min_core_agreement = math.inf
        core = set(monochromatic_core(n, radius))
        best_configuration: Optional[Configuration] = None
        for algorithm in algorithms:
            outputs = run_ball_algorithm(network, algorithm)
            configuration = Configuration(network, outputs)
            bad = base.violation_count(configuration)
            if bad < min_bad:
                min_bad = bad
                best_configuration = configuration
            core_values = {
                outputs[node] for node in network.nodes() if network.identity(node) in core
            }
            min_core_agreement = min(min_core_agreement, len(core_values))
        assert best_configuration is not None
        solved = {f: min_bad <= f for f in f_values}
        ok = ok and not any(solved.values()) and min_core_agreement == 1
        # The decidable-but-not-constructible cross-check, run through the
        # engine: on the best order-invariant output the amplified Corollary 1
        # decider (k coins per bad ball) accepts w.p. p^{min_bad} < 1/2.
        decider_acceptance: Dict[str, float] = {}
        decider_tolerance = 3.5 * math.sqrt(0.25 / trials)
        for f in f_values:
            decider = AmplifiedResilientDecider(base, f=f, repetitions=repetitions)
            acceptance = decider.acceptance_probability(
                best_configuration,
                trials=trials,
                seed=seed + 101 * radius + f,
                engine=engine,
            )
            theoretical = decider.theoretical_acceptance(int(min_bad))
            ok = ok and abs(acceptance - theoretical) < decider_tolerance and acceptance < 0.5
            decider_acceptance[f"decider_acceptance_f_{f}"] = acceptance
        result.add_row(
            radius=radius,
            algorithms=len(algorithms),
            core_size=len(core),
            min_bad_balls=int(min_bad),
            monochromatic_core=bool(min_core_agreement == 1),
            **{f"solves_f_{f}": solved[f] for f in f_values},
            **decider_acceptance,
        )
    result.matches_paper = ok
    result.notes = (
        "the exhaustive enumeration realises the finite family of order-invariant "
        "algorithms behind β = 1/N in Claim 2; decider columns measure the "
        f"amplified (k={repetitions}-draw) Corollary 1 decider on the best output "
        "via the engine"
    )
    return result


# --------------------------------------------------------------------------- #
# E4 — Θ(log* n) for 3-coloring the cycle
# --------------------------------------------------------------------------- #
def experiment_e4_logstar_coloring(
    sizes: Sequence[int] = (8, 32, 128, 512, 2048, 8192, 32768),
    seed: int = 0,
) -> ExperimentResult:
    """E4: Cole–Vishkin's measured rounds track log* n (and stay far below n)."""
    result = ExperimentResult(
        experiment_id="E4",
        title="3-coloring the cycle takes Θ(log* n) rounds (Cole–Vishkin upper bound)",
        paper_claim=(
            "Section 1.1/1.3: the n-node cycle cannot be 3-colored in fewer than "
            "Ω(log* n) rounds, even by randomized algorithms; Cole–Vishkin matches it"
        ),
        parameters={"sizes": list(sizes)},
    )
    ok = True
    rounds_by_size: List[int] = []
    for n in sizes:
        network = oriented_cycle_network(n, seed=seed)
        constructor = ColeVishkinConstructor()
        configuration = constructor.configuration(network)
        proper = ProperColoring(3).contains(configuration)
        bound = cole_vishkin_round_bound(network.max_identity())
        rounds_by_size.append(constructor.last_rounds)
        ok = ok and proper and constructor.last_rounds <= bound
        result.add_row(
            n=n,
            rounds=constructor.last_rounds,
            logstar_bound=bound,
            log_star_n=log_star(n),
            proper=proper,
            rounds_over_n=constructor.last_rounds / n,
        )
    # Shape: rounds grow by at most a small additive constant over a 4096x
    # size increase — the log* signature.  The fitted growth shape is also
    # reported; because the measured series moves by only 2–3 rounds overall,
    # the least-squares fit cannot reliably distinguish log* from log (both
    # are reported as slow growth), so the verdict only requires the fit to be
    # no faster than logarithmic, on top of the additive-constant criterion.
    from repro.analysis.growth import classify_growth, grows_no_faster_than

    shape = classify_growth(list(sizes), rounds_by_size) if len(sizes) >= 5 else "n/a"
    ok = ok and (rounds_by_size[-1] - rounds_by_size[0]) <= 3
    if len(sizes) >= 5:
        ok = ok and grows_no_faster_than(list(sizes), rounds_by_size, "log")
    result.parameters["fitted_growth_shape"] = shape
    result.matches_paper = ok
    return result


# --------------------------------------------------------------------------- #
# E5 — the Corollary 1 decider puts L_f in BPLD
# --------------------------------------------------------------------------- #
def experiment_e5_resilient_decider(
    f_values: Sequence[int] = (1, 2, 4, 8),
    n: int = 60,
    trials: int = 2_000,
    seed: int = 0,
    engine: str = "auto",
    precision: float = 0.0,
    confidence: float = 0.99,
) -> ExperimentResult:
    """E5: the resilient decider accepts ≤ f bad balls w.p. > 1/2 and rejects
    ≥ f+1 bad balls w.p. > 1/2, matching p^{|F(G)|} exactly.

    With ``precision > 0`` the acceptance probabilities run under the
    sequential-stopping rule (see E1) and the ±0.05 closed-form check and
    the > 1/2 success check become CI-aware tri-state verdicts.
    """
    result = ExperimentResult(
        experiment_id="E5",
        title="the f-resilient relaxation is in BPLD (Corollary 1 decider)",
        paper_claim=(
            "Corollary 1 proof: with p ∈ (2^{-1/f}, 2^{-1/(f+1)}), yes-instances are "
            "accepted w.p. p^{|F|} ≥ p^f > 1/2 and no-instances rejected w.p. "
            "1 − p^{|F|} ≥ 1 − p^{f+1} > 1/2"
        ),
        parameters={
            "f_values": list(f_values),
            "n": n,
            "trials": trials,
            "engine": engine,
            "precision": precision,
            "confidence": confidence,
        },
    )
    base = ProperColoring(3)
    target = _precision_target(precision, confidence, trials)
    ok = True
    verdicts: List[Optional[bool]] = []
    for f in f_values:
        decider = ResilientDecider(base, f=f)
        relaxed = f_resilient(base, f)
        for bad_balls in sorted({0, 2 * ((f + 1) // 2), 2 * ((f // 2) + 1), 2 * (f + 1)}):
            configuration = _cycle_coloring_with_bad_balls(n, bad_balls)
            actual_bad = base.violation_count(configuration)
            member = relaxed.contains(configuration)
            theoretical = decider.theoretical_acceptance(actual_bad)
            if target is not None:
                estimate = _record_estimate(
                    result,
                    decider.acceptance_estimate(
                        configuration,
                        trials=trials,
                        seed=seed,
                        engine=engine,
                        precision=target,
                    ),
                )
                acceptance = estimate.estimate
                success = acceptance if member else 1 - acceptance
                closed_form = estimate.interval.tri_between(
                    theoretical - 0.05, theoretical + 0.05
                )
                majority_side = (
                    estimate.interval.tri_at_least(0.5)
                    if member
                    else estimate.interval.tri_at_most(0.5)
                )
                row_verdict = tri_all([closed_form, majority_side])
                verdicts.append(row_verdict)
                result.add_row(
                    f=f,
                    p_bad_ball=decider.p_bad_ball,
                    bad_balls=actual_bad,
                    member=member,
                    acceptance=acceptance,
                    theoretical_acceptance=theoretical,
                    success_probability=success,
                    within_tolerance=row_verdict,
                    ci_low=estimate.ci_low,
                    ci_high=estimate.ci_high,
                    trials_used=estimate.trials,
                )
                continue
            acceptance = decider.acceptance_probability(
                configuration, trials=trials, seed=seed, engine=engine
            )
            success = acceptance if member else 1 - acceptance
            ok = ok and abs(acceptance - theoretical) < 0.05 and success > 0.5
            result.add_row(
                f=f,
                p_bad_ball=decider.p_bad_ball,
                bad_balls=actual_bad,
                member=member,
                acceptance=acceptance,
                theoretical_acceptance=theoretical,
                success_probability=success,
            )
    if target is not None:
        _apply_ci_verdict(result, verdicts)
    else:
        result.matches_paper = ok
    return result


# --------------------------------------------------------------------------- #
# E6 — error amplification (Claim 3 and the glued construction)
# --------------------------------------------------------------------------- #
def _toy_all_zeros_language() -> PredicateLCL:
    return PredicateLCL(
        is_bad=lambda ball: ball.center_output() != 0, radius=0, name="all-zeros"
    )


def _toy_faulty_constructor(q: float) -> BallConstructor:
    # The rule and its ``output_program`` are the same single bernoulli(q)
    # draw, which makes the constructor compilable by the construction
    # engine (exact mode replays the reference coins bit for bit).
    return BallConstructor(
        FunctionBallAlgorithm(
            lambda ball, tape: 1 if tape.bernoulli(q) else 0,
            radius=0,
            randomized=True,
            name=f"faulty-all-zeros(q={q})",
            output_program=lambda ball: bernoulli_output(q, 1, 0),
        )
    )


def _toy_noisy_decider(p: float) -> RandomizedDecider:
    # The rule is written as a single direct Bernoulli (accept a non-zero
    # output with probability 1 − p) so the matching ``vote_probability``
    # makes the decider compilable by repro.engine, with the engine's exact
    # mode reproducing the reference coins bit for bit.
    return RandomizedDecider(
        rule=lambda ball, tape: True
        if ball.center_output() == 0
        else tape.bernoulli(1.0 - p),
        radius=0,
        guarantee=p,
        name=f"noisy-all-zeros-decider(p={p})",
        vote_probability=lambda ball: 1.0 if ball.center_output() == 0 else 1.0 - p,
    )


def experiment_e6_error_amplification(
    q: float = 0.05,
    p: float = 0.8,
    instance_size: int = 12,
    nu_values: Sequence[int] = (1, 2, 4, 8, 12),
    trials: int = 400,
    seed: int = 0,
    engine: str = "auto",
) -> ExperimentResult:
    """E6: combining ν hard instances drives Pr[D accepts C(G)] below (1−βp)^ν."""
    result = ExperimentResult(
        experiment_id="E6",
        title="error amplification over ν hard instances (Claim 3 / Theorem 1)",
        paper_claim=(
            "Pr[D accepts C(G)] ≤ (1 − βp)^ν on the disjoint union, and "
            "≤ (1 − β(1−p)/μ)^{ν'} on the connected glued instance; for ν of Eq. (3) "
            "this contradicts a success probability r"
        ),
        parameters={
            "q": q,
            "p": p,
            "instance_size": instance_size,
            "nu_values": list(nu_values),
            "trials": trials,
            "engine": engine,
        },
    )
    language = _toy_all_zeros_language()
    constructor = _toy_faulty_constructor(q)
    decider = _toy_noisy_decider(p)
    beta = 1.0 - (1.0 - q) ** instance_size
    mu = mu_from_guarantee(p)
    ok = True
    previous_acceptance = 1.1
    for nu in nu_values:
        instances = [
            cycle_network(instance_size, id_start=1 + 10_000 * index) for index in range(nu)
        ]
        union_report = amplification_disjoint_union(
            constructor,
            decider,
            language,
            instances,
            beta=beta,
            p=p,
            trials=trials,
            seed=seed,
            engine=engine,
        )
        rows: Dict[str, object] = {
            "nu": nu,
            "beta": beta,
            "union_acceptance": union_report.acceptance_estimate,
            "union_bound": union_report.theoretical_bound,
            "union_membership": union_report.membership_estimate,
        }
        ok = ok and union_report.acceptance_estimate <= union_report.theoretical_bound + 0.07
        ok = ok and union_report.acceptance_estimate <= previous_acceptance + 0.05
        previous_acceptance = union_report.acceptance_estimate
        if nu >= 2:
            glued_report = amplification_glued(
                constructor,
                decider,
                language,
                instances,
                beta=beta,
                p=p,
                t=0,
                t_prime=0,
                anchors=[instance.nodes()[0] for instance in instances],
                trials=trials,
                seed=seed + nu,
                engine=engine,
            )
            rows["glued_acceptance"] = glued_report.acceptance_estimate
            rows["glued_bound"] = glued_report.theoretical_bound
            ok = ok and glued_report.acceptance_estimate <= glued_report.theoretical_bound + 0.07
        result.add_row(**rows)
    # The Eq. (3) prescription: for a claimed success probability r, using
    # nu_disconnected(r, p, beta) instances pushes the membership probability
    # below r.
    r = 0.5
    nu_star = nu_disconnected(r, p, beta)
    instances = [
        cycle_network(instance_size, id_start=1 + 10_000 * index) for index in range(nu_star)
    ]
    final = amplification_disjoint_union(
        constructor,
        decider,
        language,
        instances,
        beta=beta,
        p=p,
        trials=trials,
        seed=seed + 99,
        engine=engine,
    )
    ok = ok and final.membership_estimate < r
    result.add_row(
        nu=nu_star,
        beta=beta,
        union_acceptance=final.acceptance_estimate,
        union_bound=final.theoretical_bound,
        union_membership=final.membership_estimate,
        note=f"nu from Eq.(3) targeting r={r}",
    )
    result.parameters["mu"] = mu
    result.matches_paper = ok
    return result


# --------------------------------------------------------------------------- #
# E7 — the separations of Section 2.2.2 / 2.3
# --------------------------------------------------------------------------- #
def experiment_e7_separations(
    n: int = 24,
    deterministic_radius: int = 2,
    trials: int = 2_000,
    seed: int = 0,
    engine: str = "auto",
    amplified_repetitions: int = 3,
) -> ExperimentResult:
    """E7: the constructibility/decidability separations the paper cites."""
    result = ExperimentResult(
        experiment_id="E7",
        title="constant-time constructibility vs decidability separations",
        paper_claim=(
            "Section 2.2.2: coloring is decidable but not constructible in O(1); "
            "majority is constructible but not decidable in O(1); some languages are "
            "both (weak coloring in the paper; here the color-reduction-under-promise "
            "task, see the documented substitution); amos separates LD from BPLD"
        ),
        parameters={
            "n": n,
            "deterministic_radius": deterministic_radius,
            "trials": trials,
            "engine": engine,
            "amplified_repetitions": amplified_repetitions,
        },
    )
    ok = True

    # Row 1: coloring — decidable in 1 round (perfect local checker), but not
    # constructible in O(1) rounds (every order-invariant radius-1 algorithm
    # leaves many conflicts on the consecutive cycle; Claim 1 makes this a
    # statement about all algorithms).
    network = cycle_network(n, ids="consecutive")
    base = ProperColoring(3)
    checker = LocalCheckerDecider(base)
    good = _cycle_coloring_with_bad_balls(n, 0)
    bad = _cycle_coloring_with_bad_balls(n, 2)
    decidable = checker.decide(good).accepted and checker.decide(bad).rejected
    min_bad = min(
        base.violation_count(Configuration(network, run_ball_algorithm(network, algorithm)))
        for algorithm in enumerate_order_invariant_cycle_algorithms(1, [1, 2, 3])
    )
    constructible = min_bad == 0
    ok = ok and decidable and not constructible
    result.add_row(
        language="3-coloring",
        constructible_in_O1=constructible,
        decidable_in_O1=decidable,
        evidence=f"min bad balls over order-invariant radius-1 algorithms = {min_bad}",
    )

    # Row 2: majority — constructible in 0 rounds (every node selects itself),
    # not locally checkable (membership depends on a global count; the natural
    # radius-r decider is fooled by locally-balanced instances).
    from repro.core.languages import Majority

    network_path = path_network(n, ids="consecutive")
    all_selected = Configuration(network_path, {node: SELECTED for node in network_path.nodes()})
    constructible_majority = Majority().contains(all_selected)
    # A no-instance that looks locally like a yes-instance: select a prefix
    # containing just under half of the nodes — every ball of radius r at the
    # boundary sees a locally plausible mix, and balls deep inside either side
    # are monochromatic, exactly like in genuine yes-instances.
    nodes = network_path.nodes()
    minority = Configuration(
        network_path,
        {node: (SELECTED if index < (n // 2) - 1 else "") for index, node in enumerate(nodes)},
    )
    # The natural local rule "accept iff my ball contains at least as many
    # selected as unselected nodes or I see the global pattern" cannot exist;
    # we record non-decidability as a structural fact (not measurable by a
    # single decider) and verify the chosen no-instance is indeed a no-instance.
    ok = ok and constructible_majority and not Majority().contains(minority)
    result.add_row(
        language="majority",
        constructible_in_O1=constructible_majority,
        decidable_in_O1=False,
        evidence="membership requires counting n/2 selections — not locally checkable",
    )

    # Row 3: the both-constant cell — (Δ+1)-coloring under a k-coloring
    # promise: constructible in k − Δ − 1 rounds and decidable in 1 round.
    regular_size = max(10, n)
    regular_size += regular_size % 2  # a 3-regular graph needs an even order
    regular = random_regular_network(regular_size, 3, seed=seed)
    base_colors = greedy_coloring_by_identity(regular)
    wasteful = {node: base_colors[node] + 4 for node in regular.nodes()}
    promise_instance = regular.with_inputs(wasteful)
    reducer = ColorReductionConstructor(initial_palette=8, target_palette=4)
    reduced = reducer.configuration(promise_instance)
    both_ok = ProperColoring(4).contains(reduced) and reducer.last_rounds == 4
    ok = ok and both_ok
    result.add_row(
        language="(Δ+1)-coloring under k-coloring promise",
        constructible_in_O1=both_ok,
        decidable_in_O1=True,
        evidence=f"reduced 8→4 colors in {reducer.last_rounds} rounds; checker radius 1",
    )

    # Row 4: amos — randomly decidable in 0 rounds with guarantee ≈ 0.618,
    # not deterministically decidable below D/2 − 1 rounds.  The Monte-Carlo
    # guarantees are measured through the engine (``engine=``), for both the
    # single-coin golden-ratio decider and its multi-draw majority
    # amplification (calibrated to the same p, hence the same guarantee).
    separation = amos_separation_report(
        radius=deterministic_radius,
        trials=trials,
        seed=seed,
        engine=engine,
        amplified_repetitions=amplified_repetitions,
    )
    amos_ok = (
        separation.deterministic_fooled
        and separation.randomized_guarantee >= golden_ratio_guarantee() - 0.05
    )
    ok = ok and amos_ok
    result.add_row(
        language="amos",
        constructible_in_O1=True,
        decidable_in_O1=False,
        evidence=(
            f"0-round randomized guarantee {separation.randomized_guarantee:.3f}; "
            f"radius-{deterministic_radius} deterministic decider fooled on diameter "
            f"{separation.witness_diameter}"
        ),
    )

    # Row 5: the same separation witnessed by a multi-draw decider — each
    # selected node takes a k-coin majority vote instead of one coin, and the
    # measured guarantee stays at the golden ratio.
    amplified_ok = separation.amplified_guarantee >= golden_ratio_guarantee() - 0.05
    ok = ok and amplified_ok
    result.add_row(
        language=f"amos (amplified, k={separation.amplified_repetitions} draws/node)",
        constructible_in_O1=True,
        decidable_in_O1=False,
        evidence=(
            f"0-round amplified-majority guarantee {separation.amplified_guarantee:.3f} "
            f"(calibrated to (√5−1)/2 ≈ {golden_ratio_guarantee():.3f})"
        ),
    )
    result.matches_paper = ok
    result.notes = (
        "substitution: the paper's 'weak coloring' example of a both-constructible-and-"
        "decidable task is replaced by color reduction under a coloring promise "
        "(see EXPERIMENTS.md)"
    )
    return result


# --------------------------------------------------------------------------- #
# E8 — randomization helps for ε-slack, not for f-resilient
# --------------------------------------------------------------------------- #
def experiment_e8_slack_vs_resilient(
    n: int = 24,
    eps: float = 0.7,
    f_values: Sequence[int] = (1, 2, 4),
    trials: int = 400,
    seed: int = 0,
    engine: str = "auto",
) -> ExperimentResult:
    """E8: the headline contrast — the same 0-round randomized coloring solves
    the ε-slack relaxation but no constant-round algorithm (randomized or not,
    via Theorem 1 + Claim 1) solves the f-resilient relaxation.

    As a cross-check of the other side of the contrast, each f-resilient row
    also reports (via the ``engine=`` path) the Corollary 1 decider's
    acceptance probability on the best order-invariant algorithm's output:
    the relaxation stays *decidable* even though it is not constructible.
    """
    result = ExperimentResult(
        experiment_id="E8",
        title="randomization helps for ε-slack but not for f-resilient relaxations",
        paper_claim=(
            "Sections 1.1 and 4: the ε-slack relaxation of 3-coloring is solvable by a "
            "0-round Monte-Carlo algorithm with constant success probability, while the "
            "f-resilient relaxation admits no constant-time algorithm at all"
        ),
        parameters={
            "n": n,
            "eps": eps,
            "f_values": list(f_values),
            "trials": trials,
            "engine": engine,
        },
    )
    base = ProperColoring(3)
    network = cycle_network(n, ids="consecutive")
    constructor = RandomColoringConstructor(3)

    slack_language = eps_slack(base, eps)
    slack_estimate = estimate_success_probability(
        constructor, slack_language, [network], trials=trials, seed=seed, engine=engine
    )
    # The decider column only applies to the f-resilient rows; it must still
    # appear in this first row because the table renderer derives its columns
    # from the first row's keys.
    result.add_row(
        relaxation=f"eps-slack(eps={eps})",
        algorithm="random 3-coloring (0 rounds, randomized)",
        success_probability=slack_estimate.success_probability,
        solvable_in_O1=slack_estimate.success_probability > 0.5,
        decider_acceptance_on_best_output="n/a",
    )

    ok = slack_estimate.success_probability > 0.5
    algorithms = list(enumerate_order_invariant_cycle_algorithms(1, [1, 2, 3]))
    min_bad = math.inf
    best_output: Optional[Configuration] = None
    for algorithm in algorithms:
        candidate = Configuration(network, run_ball_algorithm(network, algorithm))
        bad = base.violation_count(candidate)
        if bad < min_bad:
            min_bad = bad
            best_output = candidate
    assert best_output is not None
    for f in f_values:
        resilient_language = f_resilient(base, f)
        deterministic_solvable = min_bad <= f
        randomized_estimate = estimate_success_probability(
            constructor, resilient_language, [network], trials=trials, seed=seed + f, engine=engine
        )
        # The Corollary 1 decider on the best order-invariant output: since
        # that output still has > f bad balls, it accepts w.p. p^{bad} < 1/2
        # — decidable-but-not-constructible, measured through the engine.
        decider_acceptance = ResilientDecider(base, f=f).acceptance_probability(
            best_output, trials=trials, seed=seed + f, engine=engine
        )
        ok = ok and not deterministic_solvable and randomized_estimate.success_probability < 0.5
        result.add_row(
            relaxation=f"f-resilient(f={f})",
            algorithm="best order-invariant radius-1 algorithm / random coloring",
            success_probability=randomized_estimate.success_probability,
            solvable_in_O1=deterministic_solvable,
            decider_acceptance_on_best_output=decider_acceptance,
        )
    result.matches_paper = ok
    result.notes = (
        f"min bad balls over all {len(algorithms)} order-invariant radius-1 algorithms "
        f"on the consecutive cycle: {min_bad}"
    )
    return result


# --------------------------------------------------------------------------- #
# E9 — far-acceptance probabilities and anchor choice (Claims 4 and 5)
# --------------------------------------------------------------------------- #
def experiment_e9_far_acceptance(
    q: float = 0.3,
    p: float = 0.8,
    instance_size: int = 20,
    trials: int = 400,
    seed: int = 0,
    engine: str = "auto",
) -> ExperimentResult:
    """E9: in a hard instance some node's far-acceptance probability is at
    most 1 − β(1−p)/μ, the quantity Claim 5 needs for the gluing."""
    result = ExperimentResult(
        experiment_id="E9",
        title="far-acceptance probabilities and the Claim 5 anchor",
        paper_claim=(
            "Claim 5: every hard instance contains a node u with "
            "Pr[D accepts C(H) far from u] ≤ 1 − β(1−p)/μ, μ = ⌈1/(2p−1)⌉"
        ),
        parameters={
            "q": q,
            "p": p,
            "instance_size": instance_size,
            "trials": trials,
            "engine": engine,
        },
    )
    language = _toy_all_zeros_language()
    constructor = _toy_faulty_constructor(q)
    decider = _toy_noisy_decider(p)
    network = cycle_network(instance_size)
    beta = 1.0 - (1.0 - q) ** instance_size
    mu = mu_from_guarantee(p)
    threshold = 1.0 - beta * (1.0 - p) / mu
    probabilities = []
    for node in network.nodes()[: min(8, instance_size)]:
        probability = far_acceptance_probability(
            constructor,
            decider,
            network,
            node,
            distance=0,
            trials=trials,
            seed=seed,
            engine=engine,
        )
        probabilities.append(probability)
        result.add_row(
            node_identity=network.identity(node),
            far_acceptance=probability,
            claim5_threshold=threshold,
            satisfies_claim5=probability <= threshold + 0.05,
        )
    result.parameters.update({"beta": beta, "mu": mu})
    result.matches_paper = min(probabilities) <= threshold + 0.05
    return result


# --------------------------------------------------------------------------- #
# E10 — substrate validation: classic LOCAL baselines
# --------------------------------------------------------------------------- #
def experiment_e10_baselines(
    sizes: Sequence[int] = (20, 60, 160, 400),
    degree: int = 3,
    runs: int = 5,
    seed: int = 0,
) -> ExperimentResult:
    """E10: Luby MIS and the proposal matching produce valid outputs with
    round counts growing slowly with n (validates the LOCAL substrate)."""
    result = ExperimentResult(
        experiment_id="E10",
        title="baseline LOCAL algorithms: validity and round growth",
        paper_claim=(
            "Substrate validation (no direct paper claim): Luby's MIS finishes in "
            "O(log n) phases w.h.p.; maximal matching and MIS outputs satisfy their "
            "LCL specifications on every run"
        ),
        parameters={"sizes": list(sizes), "degree": degree, "runs": runs},
    )
    ok = True
    for n in sizes:
        network = random_regular_network(n, degree, seed=seed + n)
        mis_language = MaximalIndependentSet()
        matching_language = MaximalMatching()
        mis_rounds = []
        mis_valid = True
        for run in range(runs):
            constructor = LubyMISConstructor()
            configuration = constructor.configuration(
                network, tape_factory=TapeFactory(seed + run, salt=f"e10-{n}")
            )
            mis_valid = mis_valid and mis_language.contains(configuration)
            mis_rounds.append(constructor.last_rounds)
        matcher = ProposalMatchingConstructor()
        matching_valid = matching_language.contains(matcher.configuration(network))
        max_rounds = max(mis_rounds)
        ok = ok and mis_valid and matching_valid and max_rounds <= 8 * math.log2(n) + 8
        result.add_row(
            n=n,
            luby_valid=mis_valid,
            luby_max_rounds=max_rounds,
            log2_n=math.log2(n),
            matching_valid=matching_valid,
            matching_rounds=matcher.last_rounds,
        )
    result.matches_paper = ok
    return result


#: Registry of all experiments for the bench driver and EXPERIMENTS.md.
ALL_EXPERIMENTS = {
    "E1": experiment_e1_amos_decider,
    "E2": experiment_e2_eps_slack_random_coloring,
    "E3": experiment_e3_resilient_lower_bound,
    "E4": experiment_e4_logstar_coloring,
    "E5": experiment_e5_resilient_decider,
    "E6": experiment_e6_error_amplification,
    "E7": experiment_e7_separations,
    "E8": experiment_e8_slack_vs_resilient,
    "E9": experiment_e9_far_acceptance,
    "E10": experiment_e10_baselines,
}
