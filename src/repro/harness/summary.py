"""Markdown rendering of experiment results (EXPERIMENTS.md generation).

``EXPERIMENTS.md`` records, for every experiment of DESIGN.md's index, what
the paper claims, what was measured, and whether the shapes agree.  The file
in the repository root was generated from the JSON artifacts the benchmark
harness writes to ``benchmarks/results/`` via::

    python -m repro report --results benchmarks/results --output EXPERIMENTS.md
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Union

from repro.harness.reporting import load_json
from repro.harness.results import ExperimentResult

__all__ = ["markdown_for_experiment", "render_experiments_markdown", "load_results_directory"]

#: Cap on the number of measured rows reproduced inline per experiment — the
#: complete rows stay available in the JSON artifacts.
_MAX_ROWS = 16

_HEADER = """# EXPERIMENTS — paper vs. measured

Reproduction record for *Randomized Local Network Computing* (Feuilloley &
Fraigniaud, SPAA 2015).  The paper is a theory paper without numbered tables
or figures; each experiment below reproduces one of its quantitative claims
(decider guarantees, probability windows, lower-bound shapes, and the
error-amplification bounds in the proof of Theorem 1), as indexed in
DESIGN.md.  Absolute running times are not comparable (our substrate is a
Python simulator, not the authors' model-theoretic statements); the match
criterion is the *shape*: which algorithm achieves which guarantee, where the
thresholds fall, and which side of each separation wins.

Regenerate with `pytest benchmarks/ --benchmark-only` followed by
`python -m repro report --results benchmarks/results --output EXPERIMENTS.md`.

## Documented substitutions

| Paper ingredient | Substitution in this reproduction | Why the behaviour is preserved |
|---|---|---|
| Asymptotic statements (Ω(log* n), "arbitrarily large diameter") | Finite sweeps with trend checks (growth ≤ additive constant over 4096× size increase) | the lower/upper-bound *shapes* are observable at finite n |
| The Ramsey/Adleman existence arguments (Claims 1–2) | Exhaustive enumeration of order-invariant algorithms on cycles for small radii, plus the executable A′ relabelling construction | the finiteness the proofs rely on is literal at small parameters |
| Weak coloring as the "constructible and decidable in O(1)" example | Color reduction under a k-coloring promise (E7, row 3) | fills the same cell of the separation table with a provably constant-round construction + radius-1 checker |
| A hypothetical faulty Monte-Carlo constructor for a BPLD language (the object Theorem 1 reasons about) | A toy "all-zeros" language with a constructor corrupting each node independently with probability q | every probability in the proof (β, the amplification bounds) has a closed form to compare against |

"""


def _format_cell(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def markdown_for_experiment(result: ExperimentResult) -> str:
    """One markdown section for a single experiment."""
    lines: List[str] = [f"## {result.experiment_id} — {result.title}", ""]
    lines.append(f"**Paper claim.** {result.paper_claim}")
    lines.append("")
    if result.parameters:
        rendered = ", ".join(f"`{key}={value}`" for key, value in result.parameters.items())
        lines.append(f"**Workload.** {rendered}")
        lines.append("")
    if result.rows:
        columns = list(result.rows[0].keys())
        lines.append("| " + " | ".join(columns) + " |")
        lines.append("|" + "|".join(["---"] * len(columns)) + "|")
        for row in result.rows[:_MAX_ROWS]:
            lines.append(
                "| " + " | ".join(_format_cell(row.get(column, "")) for column in columns) + " |"
            )
        if len(result.rows) > _MAX_ROWS:
            lines.append("")
            lines.append(
                f"*({len(result.rows) - _MAX_ROWS} further rows in "
                f"`benchmarks/results/{result.experiment_id.lower()}.json`)*"
            )
        lines.append("")
    if result.matches_paper is None:
        verdict = (
            "**UNRESOLVED — a confidence interval straddles an acceptance threshold**"
            if result.unresolved
            else "not evaluated"
        )
    elif result.matches_paper:
        verdict = "**measured shape matches the paper's claim**"
    else:
        verdict = "**measured shape does NOT match the paper's claim**"
    lines.append(f"**Verdict.** {verdict}")
    if result.notes:
        lines.append("")
        lines.append(f"**Notes.** {result.notes}")
    lines.append("")
    return "\n".join(lines)


def render_experiments_markdown(results: Sequence[ExperimentResult]) -> str:
    """The full EXPERIMENTS.md content for a collection of results."""
    ordered = sorted(results, key=lambda r: (len(r.experiment_id), r.experiment_id))
    summary_lines = [
        "## Summary",
        "",
        "| experiment | claim | verdict |",
        "|---|---|---|",
    ]
    for result in ordered:
        if result.matches_paper:
            verdict = "matches"
        elif result.matches_paper is not None:
            verdict = "DOES NOT match"
        else:
            verdict = "UNRESOLVED" if result.unresolved else "n/a"
        summary_lines.append(f"| {result.experiment_id} | {result.title} | {verdict} |")
    summary_lines.append("")
    body = "\n".join(markdown_for_experiment(result) for result in ordered)
    return _HEADER + "\n".join(summary_lines) + "\n" + body


def load_results_directory(directory: Union[str, Path]) -> List[ExperimentResult]:
    """Load every ``*.json`` experiment artifact in a directory."""
    directory = Path(directory)
    results = []
    for path in sorted(directory.glob("*.json")):
        results.append(load_json(path))
    return results
