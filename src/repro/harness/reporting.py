"""Rendering and persisting experiment results."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.analysis.tables import format_table
from repro.harness.results import ExperimentResult

__all__ = ["render_experiment", "write_json", "load_json"]


def render_experiment(result: ExperimentResult, precision: int = 4) -> str:
    """Render an experiment result as the text block the benches print."""
    lines = [
        f"== {result.experiment_id}: {result.title} ==",
        f"paper claim : {result.paper_claim}",
    ]
    if result.parameters:
        parameters = ", ".join(f"{key}={value}" for key, value in result.parameters.items())
        lines.append(f"parameters  : {parameters}")
    if result.rows:
        lines.append(format_table(result.rows, precision=precision))
    if result.trials_used is not None:
        ci = ""
        if result.ci_low is not None and result.ci_high is not None:
            ci = f", binding CI [{result.ci_low:.4f}, {result.ci_high:.4f}]"
        lines.append(f"precision   : {result.trials_used} trials used{ci}")
    if result.matches_paper is not None:
        verdict = "MATCHES the paper's claim" if result.matches_paper else "DOES NOT match"
        lines.append(f"verdict     : {verdict}")
    elif result.unresolved:
        lines.append(
            "verdict     : UNRESOLVED — a confidence interval straddles an "
            "acceptance threshold; rerun with a tighter --precision"
        )
    if result.notes:
        lines.append(f"notes       : {result.notes}")
    return "\n".join(lines)


def write_json(result: ExperimentResult, path: Union[str, Path]) -> Path:
    """Persist an experiment result as JSON; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(result.to_dict(), indent=2, default=str), encoding="utf8")
    return path


def load_json(path: Union[str, Path]) -> ExperimentResult:
    """Load an experiment result previously written by :func:`write_json`."""
    data = json.loads(Path(path).read_text(encoding="utf8"))
    return ExperimentResult.from_dict(data)
