"""Experiment result records.

An :class:`ExperimentResult` captures everything a row of EXPERIMENTS.md
needs: the experiment identifier, the workload parameters, the measured rows,
the claim from the paper it reproduces, and a free-form verdict on whether
the measured shape matches.  The :class:`ExperimentRegistry` collects the
results of one benchmark session so a single report can be rendered.

CI-aware verdicts
-----------------
``matches_paper`` keeps its three historical values — ``True`` / ``False`` /
``None`` (never judged).  Experiments running under a precision target
(see :mod:`repro.stats`) additionally distinguish *unresolved* from
*unjudged*: when a criterion's confidence interval straddles its acceptance
threshold, the experiment sets ``matches_paper=None`` **and**
``unresolved=True`` instead of letting the point estimate flap between pass
and fail.  The :attr:`ExperimentResult.verdict` property folds the pair into
one of ``"pass"`` / ``"fail"`` / ``"unresolved"`` / ``"unset"``; anything
but ``"pass"`` fails the CLI's exit-code gate.  ``ci_low`` / ``ci_high`` /
``trials_used`` record the binding (widest) interval and the total trials an
adaptive run consumed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

__all__ = ["ExperimentResult", "ExperimentRegistry"]


@dataclass
class ExperimentResult:
    """Outcome of one experiment (one table/series of the harness).

    Attributes
    ----------
    experiment_id:
        The identifier from DESIGN.md's experiment index (e.g. ``"E1"``).
    title:
        Human-readable one-line description.
    paper_claim:
        The quantitative claim from the paper being reproduced.
    parameters:
        Workload parameters of this run (sizes, trials, seeds, ...).
    rows:
        The measured rows (same shape the bench prints).
    matches_paper:
        Whether the measured shape agrees with the paper's claim, as judged
        by the experiment's own acceptance criterion (``None``: not judged,
        or — with ``unresolved`` set — not judgeable at this precision).
    unresolved:
        Set (with ``matches_paper=None``) when a CI-aware criterion's
        interval straddles its threshold: more trials, not a different
        verdict, is the correct response.
    ci_low / ci_high:
        The binding (widest) confidence interval of an adaptive run.
    trials_used:
        Total Monte-Carlo trials consumed by an adaptive run.
    notes:
        Anything worth recording (tolerances used, substitutions, caveats).
    """

    experiment_id: str
    title: str
    paper_claim: str
    parameters: Dict[str, object] = field(default_factory=dict)
    rows: List[Dict[str, object]] = field(default_factory=list)
    matches_paper: Optional[bool] = None
    unresolved: bool = False
    ci_low: Optional[float] = None
    ci_high: Optional[float] = None
    trials_used: Optional[int] = None
    notes: str = ""

    @property
    def verdict(self) -> str:
        """The four-way verdict: ``pass`` / ``fail`` / ``unresolved`` /
        ``unset``.  Only ``pass`` satisfies the CLI gate."""
        if self.matches_paper is True:
            return "pass"
        if self.matches_paper is False:
            return "fail"
        return "unresolved" if self.unresolved else "unset"

    def add_row(self, **values: object) -> None:
        self.rows.append(dict(values))

    def column(self, name: str) -> List[object]:
        return [row.get(name) for row in self.rows]

    def to_dict(self) -> Dict[str, object]:
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "paper_claim": self.paper_claim,
            "parameters": dict(self.parameters),
            "rows": [dict(row) for row in self.rows],
            "matches_paper": self.matches_paper,
            "unresolved": self.unresolved,
            "ci_low": self.ci_low,
            "ci_high": self.ci_high,
            "trials_used": self.trials_used,
            "notes": self.notes,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ExperimentResult":
        # The CI fields default when absent, so artifacts written before the
        # stats layer still load.
        return cls(
            experiment_id=str(data["experiment_id"]),
            title=str(data["title"]),
            paper_claim=str(data["paper_claim"]),
            parameters=dict(data.get("parameters", {})),  # type: ignore[arg-type]
            rows=[dict(row) for row in data.get("rows", [])],  # type: ignore[union-attr]
            matches_paper=data.get("matches_paper"),  # type: ignore[arg-type]
            unresolved=bool(data.get("unresolved", False)),
            ci_low=data.get("ci_low"),  # type: ignore[arg-type]
            ci_high=data.get("ci_high"),  # type: ignore[arg-type]
            trials_used=data.get("trials_used"),  # type: ignore[arg-type]
            notes=str(data.get("notes", "")),
        )


@dataclass
class ExperimentRegistry:
    """A collection of experiment results from one benchmark session."""

    results: Dict[str, ExperimentResult] = field(default_factory=dict)

    def record(self, result: ExperimentResult) -> None:
        self.results[result.experiment_id] = result

    def get(self, experiment_id: str) -> ExperimentResult:
        return self.results[experiment_id]

    def __contains__(self, experiment_id: str) -> bool:
        return experiment_id in self.results

    def __len__(self) -> int:
        return len(self.results)

    def summary_rows(self) -> List[Dict[str, object]]:
        """One row per experiment: id, title, and the match verdict."""
        return [
            {
                "experiment": result.experiment_id,
                "title": result.title,
                "matches_paper": result.matches_paper,
            }
            for result in sorted(self.results.values(), key=lambda r: r.experiment_id)
        ]
