"""Experiment result records.

An :class:`ExperimentResult` captures everything a row of EXPERIMENTS.md
needs: the experiment identifier, the workload parameters, the measured rows,
the claim from the paper it reproduces, and a free-form verdict on whether
the measured shape matches.  The :class:`ExperimentRegistry` collects the
results of one benchmark session so a single report can be rendered.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

__all__ = ["ExperimentResult", "ExperimentRegistry"]


@dataclass
class ExperimentResult:
    """Outcome of one experiment (one table/series of the harness).

    Attributes
    ----------
    experiment_id:
        The identifier from DESIGN.md's experiment index (e.g. ``"E1"``).
    title:
        Human-readable one-line description.
    paper_claim:
        The quantitative claim from the paper being reproduced.
    parameters:
        Workload parameters of this run (sizes, trials, seeds, ...).
    rows:
        The measured rows (same shape the bench prints).
    matches_paper:
        Whether the measured shape agrees with the paper's claim, as judged
        by the experiment's own acceptance criterion.
    notes:
        Anything worth recording (tolerances used, substitutions, caveats).
    """

    experiment_id: str
    title: str
    paper_claim: str
    parameters: Dict[str, object] = field(default_factory=dict)
    rows: List[Dict[str, object]] = field(default_factory=list)
    matches_paper: Optional[bool] = None
    notes: str = ""

    def add_row(self, **values: object) -> None:
        self.rows.append(dict(values))

    def column(self, name: str) -> List[object]:
        return [row.get(name) for row in self.rows]

    def to_dict(self) -> Dict[str, object]:
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "paper_claim": self.paper_claim,
            "parameters": dict(self.parameters),
            "rows": [dict(row) for row in self.rows],
            "matches_paper": self.matches_paper,
            "notes": self.notes,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ExperimentResult":
        return cls(
            experiment_id=str(data["experiment_id"]),
            title=str(data["title"]),
            paper_claim=str(data["paper_claim"]),
            parameters=dict(data.get("parameters", {})),  # type: ignore[arg-type]
            rows=[dict(row) for row in data.get("rows", [])],  # type: ignore[union-attr]
            matches_paper=data.get("matches_paper"),  # type: ignore[arg-type]
            notes=str(data.get("notes", "")),
        )


@dataclass
class ExperimentRegistry:
    """A collection of experiment results from one benchmark session."""

    results: Dict[str, ExperimentResult] = field(default_factory=dict)

    def record(self, result: ExperimentResult) -> None:
        self.results[result.experiment_id] = result

    def get(self, experiment_id: str) -> ExperimentResult:
        return self.results[experiment_id]

    def __contains__(self, experiment_id: str) -> bool:
        return experiment_id in self.results

    def __len__(self) -> int:
        return len(self.results)

    def summary_rows(self) -> List[Dict[str, object]]:
        """One row per experiment: id, title, and the match verdict."""
        return [
            {
                "experiment": result.experiment_id,
                "title": result.title,
                "matches_paper": result.matches_paper,
            }
            for result in sorted(self.results.values(), key=lambda r: r.experiment_id)
        ]
