"""Experiment harness: named experiments, result records, and reporting.

Each experiment of DESIGN.md's index (E1–E10) has a function in
``benchmarks/`` that produces an :class:`~repro.harness.results.ExperimentResult`;
the harness records the result rows, the parameters, and the paper's expected
shape so EXPERIMENTS.md can be regenerated mechanically.
"""

from repro.harness.results import ExperimentResult, ExperimentRegistry
from repro.harness.reporting import render_experiment, write_json, load_json

__all__ = [
    "ExperimentResult",
    "ExperimentRegistry",
    "render_experiment",
    "write_json",
    "load_json",
]
