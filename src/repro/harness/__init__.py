"""Experiment harness: specs, named experiments, result records, reporting.

Each experiment of DESIGN.md's index (E1–E10) is described by an
:class:`~repro.harness.registry.ExperimentSpec` (typed parameter schema,
presets, seed/engine capabilities) in the module-level
:data:`~repro.harness.registry.REGISTRY`, with its runner function in
:mod:`repro.harness.experiments` producing an
:class:`~repro.harness.results.ExperimentResult`; the harness records the
result rows, the parameters, and the paper's expected shape so
EXPERIMENTS.md can be regenerated mechanically.  Programmatic callers go
through :class:`repro.api.Session` rather than the runner functions.
"""

from repro.harness.registry import (
    REGISTRY,
    ExperimentSpec,
    ParameterSpec,
    ParameterValueError,
    SpecValidationError,
    UnknownParameterError,
)
from repro.harness.results import ExperimentResult, ExperimentRegistry
from repro.harness.reporting import render_experiment, write_json, load_json

__all__ = [
    "REGISTRY",
    "ExperimentResult",
    "ExperimentRegistry",
    "ExperimentSpec",
    "ParameterSpec",
    "ParameterValueError",
    "SpecValidationError",
    "UnknownParameterError",
    "render_experiment",
    "write_json",
    "load_json",
]
