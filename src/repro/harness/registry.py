"""Declarative experiment specs: the registry behind :mod:`repro.api`.

Each of the paper's experiments (E1–E10) is described by an
:class:`ExperimentSpec`: a typed parameter schema with defaults, the
``full``/``quick`` presets, the seed contract, and the engine-capability
tags, next to the runner function from :mod:`repro.harness.experiments`.
The spec is the single source of truth the rest of the system derives
everything else from:

* **Validation** — unknown parameter names raise :class:`UnknownParameterError`
  (and ill-typed values :class:`ParameterValueError`) at spec-validation time,
  before any workload is built, instead of surfacing as a deep ``TypeError``
  inside an experiment.
* **Normalization** — :meth:`ExperimentSpec.resolve` merges a preset, the
  caller's overrides, and the session-level seed/engine into a *fully
  normalized* parameter mapping (every parameter present, sequences as lists,
  floats as floats).  Two logically identical requests normalize to the same
  mapping regardless of how they were written down.
* **Canonical cache keys** — :meth:`ExperimentSpec.cache_key` hashes the
  normalized mapping (see :func:`repro.engine.cache.request_cache_key`), so
  the cache key of a run is a function of the schema, never of the calling
  convention.
* **Capabilities** — whether a spec accepts ``seed`` and/or ``engine`` is
  part of its schema; nothing in the system introspects function signatures
  anymore (the old ``accepts_seed`` helper is gone).

The module-level :data:`REGISTRY` holds the ten shipped specs; it is a
:class:`~collections.abc.MutableMapping`, so tests can swap specs in and out
with ``monkeypatch.setitem``.
"""

from __future__ import annotations

from collections.abc import MutableMapping
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.engine.adapters import ENGINE_CHOICES
from repro.engine.cache import request_cache_key
from repro.errors import ReproError
from repro.harness import experiments as _experiments
from repro.harness.results import ExperimentResult

__all__ = [
    "SpecValidationError",
    "UnknownParameterError",
    "ParameterValueError",
    "ParameterSpec",
    "ExperimentSpec",
    "ExperimentRegistry",
    "REGISTRY",
    "PRESET_FULL",
    "PRESET_QUICK",
]

#: The two preset names every spec defines.  ``full`` is the schema's own
#: defaults; ``quick`` is the reduced workload the CLI's ``--quick`` flag and
#: the CI smoke job use.
PRESET_FULL = "full"
PRESET_QUICK = "quick"


class SpecValidationError(ReproError, ValueError):
    """A parameter mapping does not satisfy an experiment's schema.

    Part of the :mod:`repro.errors` taxonomy (HTTP 400) while remaining a
    ``ValueError`` for pre-taxonomy callers.
    """

    code = "spec_validation"
    http_status = 400


class UnknownParameterError(SpecValidationError):
    """A parameter name not declared by the experiment's schema."""

    code = "unknown_parameter"

    def __init__(self, experiment_id: str, names: Sequence[str], known: Sequence[str]) -> None:
        self.experiment_id = experiment_id
        self.names = tuple(names)
        super().__init__(
            f"unknown parameter(s) for {experiment_id}: {', '.join(sorted(names))}; "
            f"declared parameters: {', '.join(known)}",
            experiment_id=experiment_id,
            names=sorted(names),
            known=list(known),
        )


class ParameterValueError(SpecValidationError):
    """A declared parameter received a value of the wrong shape or type."""

    code = "parameter_value"


@dataclass(frozen=True)
class ParameterSpec:
    """One declared parameter: a name, a kind, and a typed default.

    ``kind`` is one of ``int``, ``float``, ``str``, ``bool``, ``seq[int]``,
    ``seq[float]``.  Normalization coerces the benign cases (tuples to lists,
    ints where floats are declared) and rejects everything else, so the
    normalized form of a value is canonical: two logically equal requests
    produce byte-identical canonical JSON, hence identical cache keys.
    """

    name: str
    kind: str
    default: object
    choices: Optional[Tuple[str, ...]] = None
    doc: str = ""

    _KINDS = ("int", "float", "str", "bool", "seq[int]", "seq[float]")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ValueError(f"unknown parameter kind {self.kind!r} for {self.name!r}")
        # The default must satisfy the schema it anchors.
        object.__setattr__(self, "default", self._normalize(self.default, "default for "))

    # ------------------------------------------------------------------ #
    def _scalar(self, kind: str, value: object, context: str) -> object:
        if kind == "int":
            if isinstance(value, bool) or not isinstance(value, int):
                raise ParameterValueError(f"{context}{self.name!r} must be an int, got {value!r}")
            return value
        if kind == "float":
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ParameterValueError(
                    f"{context}{self.name!r} must be a float, got {value!r}"
                )
            return float(value)
        if kind == "bool":
            if not isinstance(value, bool):
                raise ParameterValueError(f"{context}{self.name!r} must be a bool, got {value!r}")
            return value
        if not isinstance(value, str):
            raise ParameterValueError(f"{context}{self.name!r} must be a str, got {value!r}")
        if self.choices is not None and value not in self.choices:
            raise ParameterValueError(
                f"{context}{self.name!r} must be one of {', '.join(self.choices)}; got {value!r}"
            )
        return value

    def _normalize(self, value: object, context: str = "") -> object:
        if self.kind.startswith("seq["):
            if isinstance(value, str) or not isinstance(value, Sequence):
                raise ParameterValueError(
                    f"{context}{self.name!r} must be a sequence, got {value!r}"
                )
            element_kind = self.kind[4:-1]
            return [self._scalar(element_kind, item, context) for item in value]
        return self._scalar(self.kind, value, context)

    def normalize(self, value: object) -> object:
        """The canonical form of a value for this parameter (or raise
        :class:`ParameterValueError`)."""
        return self._normalize(value)

    def render(self) -> str:
        """The ``name=default (kind)`` cell the CLI's ``list`` prints."""
        kind = self.kind
        if self.choices is not None:
            kind = f"{kind}: {'|'.join(self.choices)}"
        return f"{self.name}={self.default!r} ({kind})"


def _seed_parameter() -> ParameterSpec:
    return ParameterSpec("seed", "int", 0, doc="master seed; runs are bit-reproducible")


def _engine_parameter() -> ParameterSpec:
    return ParameterSpec(
        "engine",
        "str",
        "auto",
        choices=tuple(ENGINE_CHOICES),
        doc="execution engine for the Monte-Carlo stages",
    )


def _precision_parameters() -> Tuple[ParameterSpec, ParameterSpec]:
    """The adaptive-precision contract: a CI half-width target (0 disables
    sequential stopping; the fixed trial budget then applies unchanged) and
    the confidence level of the interval/verdicts."""
    return (
        ParameterSpec(
            "precision",
            "float",
            0.0,
            doc="CI half-width target for sequential stopping (0: fixed trials)",
        ),
        ParameterSpec(
            "confidence",
            "float",
            0.99,
            doc="confidence level of the adaptive CIs and CI-aware verdicts",
        ),
    )


@dataclass(frozen=True)
class ExperimentSpec:
    """A declarative description of one experiment.

    Attributes
    ----------
    id:
        The experiment identifier (``"E1"`` .. ``"E10"``).
    title:
        One-line human-readable summary (shown by ``python -m repro list``).
    runner:
        The function that actually runs the experiment; it is always called
        with the **fully normalized** parameter mapping, so its own keyword
        defaults are never exercised through the facade.
    parameters:
        The ordered parameter schema.
    quick:
        The ``quick`` preset: overrides applied on top of the defaults.
    """

    id: str
    title: str
    runner: Callable[..., ExperimentResult]
    parameters: Tuple[ParameterSpec, ...]
    quick: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        names = [parameter.name for parameter in self.parameters]
        if len(set(names)) != len(names):
            raise ValueError(f"{self.id}: duplicate parameter names in schema")
        # Presets are validated eagerly: a typo in a quick preset is a
        # programming error, not something to surface at run time.
        object.__setattr__(self, "quick", dict(self.quick))
        self.validate(self.quick)

    # ------------------------------------------------------------------ #
    @property
    def parameter_names(self) -> Tuple[str, ...]:
        return tuple(parameter.name for parameter in self.parameters)

    def parameter(self, name: str) -> ParameterSpec:
        for parameter in self.parameters:
            if parameter.name == name:
                return parameter
        raise UnknownParameterError(self.id, [name], self.parameter_names)

    @property
    def accepts_seed(self) -> bool:
        """The seed contract: whether the schema declares a ``seed``."""
        return "seed" in self.parameter_names

    @property
    def accepts_engine(self) -> bool:
        """Whether the schema declares an ``engine`` selector."""
        return "engine" in self.parameter_names

    @property
    def accepts_precision(self) -> bool:
        """The precision contract: whether the schema declares a
        ``precision`` half-width target (adaptive sequential stopping)."""
        return "precision" in self.parameter_names

    @property
    def capabilities(self) -> Tuple[str, ...]:
        """The capability tags (``seed``, ``engine``, ``precision``) the
        schema implies."""
        tags = []
        if self.accepts_seed:
            tags.append("seed")
        if self.accepts_engine:
            tags.append("engine")
        if self.accepts_precision:
            tags.append("precision")
        return tuple(tags)

    @property
    def presets(self) -> Dict[str, Dict[str, object]]:
        return {PRESET_FULL: {}, PRESET_QUICK: dict(self.quick)}

    # ------------------------------------------------------------------ #
    def validate(self, overrides: Mapping[str, object]) -> Dict[str, object]:
        """Defaults overlaid with normalized ``overrides``: the fully
        normalized parameter mapping of one run.

        Raises :class:`UnknownParameterError` for undeclared names and
        :class:`ParameterValueError` for ill-typed values — both before any
        experiment code runs.
        """
        unknown = [name for name in overrides if name not in self.parameter_names]
        if unknown:
            raise UnknownParameterError(self.id, unknown, self.parameter_names)
        normalized: Dict[str, object] = {}
        for parameter in self.parameters:
            if parameter.name in overrides:
                normalized[parameter.name] = parameter.normalize(overrides[parameter.name])
            else:
                # Sequence defaults are copied: a runner (or caller) mutating
                # its argument must never corrupt the registry's schema.
                default = parameter.default
                if isinstance(default, list):
                    default = list(default)
                normalized[parameter.name] = default
        return normalized

    def resolve(
        self,
        preset: str = PRESET_FULL,
        overrides: Optional[Mapping[str, object]] = None,
        seed: Optional[int] = None,
        engine: Optional[str] = None,
        precision: Optional[float] = None,
        confidence: Optional[float] = None,
    ) -> Dict[str, object]:
        """The normalized parameters of one run: preset, then overrides, then
        the session-level ``seed``/``engine``/``precision``/``confidence``
        (applied only when the schema declares the capability and the caller
        did not already pin them)."""
        presets = self.presets
        if preset not in presets:
            raise SpecValidationError(
                f"{self.id}: unknown preset {preset!r}; available: {', '.join(presets)}"
            )
        merged: Dict[str, object] = dict(presets[preset])
        merged.update(overrides or {})
        if seed is not None and self.accepts_seed and "seed" not in merged:
            merged["seed"] = seed
        if engine is not None and self.accepts_engine and "engine" not in merged:
            merged["engine"] = engine
        if precision is not None and self.accepts_precision and "precision" not in merged:
            merged["precision"] = precision
        if confidence is not None and self.accepts_precision and "confidence" not in merged:
            merged["confidence"] = confidence
        return self.validate(merged)

    def cache_key(self, parameters: Mapping[str, object], version: Optional[str] = None) -> str:
        """The canonical cache key of a run: derived from the normalized
        schema, never from raw keyword dicts (see
        :func:`repro.engine.cache.request_cache_key`)."""
        return request_cache_key(self.id, self.validate(parameters), version=version)

    def run(self, parameters: Mapping[str, object]) -> ExperimentResult:
        """Validate and run; the runner sees the fully normalized mapping."""
        return self.runner(**self.validate(parameters))


class ExperimentRegistry(MutableMapping):
    """An ordered mapping of experiment id → :class:`ExperimentSpec`.

    Being a real ``MutableMapping`` keeps tests simple (``monkeypatch.setitem``
    swaps a spec for a stub) while :meth:`register` stays the declarative
    front door.
    """

    def __init__(self, specs: Sequence[ExperimentSpec] = ()) -> None:
        self._specs: Dict[str, ExperimentSpec] = {}
        for spec in specs:
            self.register(spec)

    def register(self, spec: ExperimentSpec, replace: bool = False) -> ExperimentSpec:
        if not replace and spec.id in self._specs:
            raise ValueError(f"experiment {spec.id!r} is already registered")
        self._specs[spec.id] = spec
        return spec

    def select(self, tokens: Sequence[str]) -> List[str]:
        """Resolve CLI-style tokens (ids in any case, or ``all``) to ids,
        preserving order and dropping duplicates."""
        if any(token.lower() == "all" for token in tokens):
            return list(self._specs)
        resolved: List[str] = []
        for token in tokens:
            experiment_id = token.upper()
            if experiment_id not in self._specs:
                raise KeyError(
                    f"unknown experiment {token!r}; available: "
                    f"{', '.join(self._specs)} or 'all'"
                )
            if experiment_id not in resolved:
                resolved.append(experiment_id)
        return resolved

    # -- MutableMapping protocol --------------------------------------- #
    def __getitem__(self, experiment_id: str) -> ExperimentSpec:
        return self._specs[experiment_id]

    def __setitem__(self, experiment_id: str, spec: ExperimentSpec) -> None:
        self._specs[experiment_id] = spec

    def __delitem__(self, experiment_id: str) -> None:
        del self._specs[experiment_id]

    def __iter__(self) -> Iterator[str]:
        return iter(self._specs)

    def __len__(self) -> int:
        return len(self._specs)


def _int_seq(name: str, default: Sequence[int], doc: str = "") -> ParameterSpec:
    return ParameterSpec(name, "seq[int]", list(default), doc=doc)


def _float_seq(name: str, default: Sequence[float], doc: str = "") -> ParameterSpec:
    return ParameterSpec(name, "seq[float]", list(default), doc=doc)


#: The ten shipped specs.  Parameter defaults mirror the runner signatures
#: (a registry test asserts they cannot drift); the quick presets are the
#: reduced workloads that used to live in the CLI's ``QUICK_PARAMETERS``.
REGISTRY = ExperimentRegistry(
    [
        ExperimentSpec(
            id="E1",
            title="amos decided in 0 rounds with guarantee p = (√5−1)/2",
            runner=_experiments.experiment_e1_amos_decider,
            parameters=(
                _int_seq("sizes", [12, 40]),
                _int_seq("selected_counts", [0, 1, 2, 3]),
                ParameterSpec("trials", "int", 3_000),
                _seed_parameter(),
                _engine_parameter(),
                *_precision_parameters(),
            ),
            quick={"sizes": [9], "trials": 400},
        ),
        ExperimentSpec(
            id="E2",
            title="ε-slack 3-coloring solved by the 0-round random coloring",
            runner=_experiments.experiment_e2_eps_slack_random_coloring,
            parameters=(
                _int_seq("sizes", [30, 100, 300, 1000]),
                _float_seq("eps_values", [0.7, 0.62, 0.58]),
                ParameterSpec("trials", "int", 200),
                ParameterSpec("decider_trials", "int", 1_200),
                ParameterSpec("repetitions", "int", 3),
                _seed_parameter(),
                _engine_parameter(),
            ),
            # The verdict needs the concentration of the largest size, so the
            # quick grid keeps one mid-sized cycle (90 was too small: eps=0.62
            # sat within one sigma of the 5/9 mean bad fraction and failed
            # spuriously).
            quick={
                "sizes": [30, 300],
                "eps_values": [0.75, 0.65],
                "trials": 60,
                "decider_trials": 300,
            },
        ),
        ExperimentSpec(
            id="E3",
            title="f-resilient 3-coloring defeats every order-invariant O(1) algorithm",
            runner=_experiments.experiment_e3_resilient_lower_bound,
            parameters=(
                ParameterSpec("n", "int", 24),
                _int_seq("radii", [0, 1]),
                _int_seq("f_values", [1, 2, 4]),
                ParameterSpec("trials", "int", 1_200),
                ParameterSpec("repetitions", "int", 3),
                _seed_parameter(),
                _engine_parameter(),
            ),
            quick={"n": 15, "trials": 300},
        ),
        ExperimentSpec(
            id="E4",
            title="3-coloring the cycle takes Θ(log* n) rounds (Cole–Vishkin upper bound)",
            runner=_experiments.experiment_e4_logstar_coloring,
            parameters=(
                _int_seq("sizes", [8, 32, 128, 512, 2048, 8192, 32768]),
                _seed_parameter(),
            ),
            quick={"sizes": [8, 64, 1024]},
        ),
        ExperimentSpec(
            id="E5",
            title="the f-resilient relaxation is in BPLD (Corollary 1 decider)",
            runner=_experiments.experiment_e5_resilient_decider,
            parameters=(
                _int_seq("f_values", [1, 2, 4, 8]),
                ParameterSpec("n", "int", 60),
                ParameterSpec("trials", "int", 2_000),
                _seed_parameter(),
                _engine_parameter(),
                *_precision_parameters(),
            ),
            quick={"f_values": [1, 2], "n": 24, "trials": 400},
        ),
        ExperimentSpec(
            id="E6",
            title="error amplification over ν hard instances (Claim 3 / Theorem 1)",
            runner=_experiments.experiment_e6_error_amplification,
            parameters=(
                ParameterSpec("q", "float", 0.05),
                ParameterSpec("p", "float", 0.8),
                ParameterSpec("instance_size", "int", 12),
                _int_seq("nu_values", [1, 2, 4, 8, 12]),
                ParameterSpec("trials", "int", 400),
                _seed_parameter(),
                _engine_parameter(),
            ),
            quick={"nu_values": [1, 2, 4], "trials": 120, "instance_size": 8},
        ),
        ExperimentSpec(
            id="E7",
            title="constant-time constructibility vs decidability separations",
            runner=_experiments.experiment_e7_separations,
            parameters=(
                # E7 plants conflicting edges on a 3-colored cycle, so n must
                # be divisible by 3 (16 crashed the workload builder).
                ParameterSpec("n", "int", 24),
                ParameterSpec("deterministic_radius", "int", 2),
                ParameterSpec("trials", "int", 2_000),
                _seed_parameter(),
                _engine_parameter(),
                ParameterSpec("amplified_repetitions", "int", 3),
            ),
            quick={"n": 15, "trials": 400},
        ),
        ExperimentSpec(
            id="E8",
            title="randomization helps for ε-slack but not for f-resilient relaxations",
            runner=_experiments.experiment_e8_slack_vs_resilient,
            parameters=(
                ParameterSpec("n", "int", 24),
                ParameterSpec("eps", "float", 0.7),
                _int_seq("f_values", [1, 2, 4]),
                ParameterSpec("trials", "int", 400),
                _seed_parameter(),
                _engine_parameter(),
            ),
            quick={"n": 15, "trials": 100},
        ),
        ExperimentSpec(
            id="E9",
            title="far-acceptance probabilities and the Claim 5 anchor",
            runner=_experiments.experiment_e9_far_acceptance,
            parameters=(
                ParameterSpec("q", "float", 0.3),
                ParameterSpec("p", "float", 0.8),
                ParameterSpec("instance_size", "int", 20),
                ParameterSpec("trials", "int", 400),
                _seed_parameter(),
                _engine_parameter(),
            ),
            quick={"instance_size": 12, "trials": 120},
        ),
        ExperimentSpec(
            id="E10",
            title="baseline LOCAL algorithms: validity and round growth",
            runner=_experiments.experiment_e10_baselines,
            parameters=(
                _int_seq("sizes", [20, 60, 160, 400]),
                ParameterSpec("degree", "int", 3),
                ParameterSpec("runs", "int", 5),
                _seed_parameter(),
            ),
            quick={"sizes": [20, 40], "runs": 2},
        ),
    ]
)
