"""Luby's randomized maximal independent set algorithm.

Each phase takes two communication rounds:

* **bidding round** — every still-undecided node draws a uniform random value
  and broadcasts it; a node whose value is a strict local minimum among the
  undecided nodes of its closed neighbourhood (ties broken by identity) marks
  itself as *joining*;
* **notification round** — joining nodes broadcast the fact; they enter the
  independent set, and every undecided neighbour of a joining node leaves the
  competition permanently.

With high probability all nodes are decided after O(log n) phases; the
benchmark E10 verifies the logarithmic growth of the measured round counts,
which validates the message-passing simulator on a genuinely randomized,
adaptive-round algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.construction import MessagePassingConstructor
from repro.local.algorithm import LocalAlgorithm, NodeContext

__all__ = ["LubyMISAlgorithm", "LubyMISConstructor"]


@dataclass
class _LubyState:
    status: str = "active"  # "active" | "joining" | "in_mis" | "out"


class LubyMISAlgorithm(LocalAlgorithm):
    """Message-passing implementation of Luby's MIS."""

    name = "luby-mis"

    def initial_state(self, ctx: NodeContext) -> _LubyState:
        return _LubyState()

    def send(self, state: _LubyState, ctx: NodeContext, rnd: int) -> object:
        bidding_round = rnd % 2 == 1
        if bidding_round:
            if state.status != "active":
                return ("decided", state.status)
            return ("bid", self._own_bid(ctx, rnd), ctx.identity)
        # Notification round.
        return ("note", state.status)

    def receive(
        self,
        state: _LubyState,
        ctx: NodeContext,
        rnd: int,
        inbox: Dict[int, object],
    ) -> _LubyState:
        bidding_round = rnd % 2 == 1
        if bidding_round:
            if state.status != "active":
                return state
            # Both send() and receive() derive the phase bid from the same
            # forked child tape, so the value broadcast to the neighbours and
            # the value used in the local-minimum test are identical.
            own_value = self._own_bid(ctx, rnd)
            competitors = [
                (message[1], message[2])
                for message in inbox.values()
                if isinstance(message, tuple) and message[0] == "bid"
            ]
            if all(
                (own_value, ctx.identity) < competitor for competitor in competitors
            ):
                state.status = "joining"
            return state
        # Notification round.
        if state.status == "joining":
            state.status = "in_mis"
            return state
        if state.status == "active":
            for message in inbox.values():
                if isinstance(message, tuple) and message[0] == "note" and message[1] == "joining":
                    state.status = "out"
                    break
        return state

    def _own_bid(self, ctx: NodeContext, rnd: int) -> float:
        """Deterministic per-phase bid derived from the node's tape seed."""
        return ctx.tape.fork(("luby-bid", rnd)).uniform()

    def send_bid_value(self, ctx: NodeContext, rnd: int) -> float:
        return self._own_bid(ctx, rnd)

    def finished(self, state: _LubyState, ctx: NodeContext, rnd: int) -> bool:
        return state.status in ("in_mis", "out")

    def output(self, state: _LubyState, ctx: NodeContext) -> object:
        return state.status == "in_mis"


class LubyMISConstructor(MessagePassingConstructor):
    """Constructor wrapper: runs Luby's MIS until every node is decided."""

    def __init__(self, max_rounds: int = 10_000) -> None:
        super().__init__(
            algorithm_factory=LubyMISAlgorithm,
            randomized=True,
            rounds=None,
            max_rounds=max_rounds,
            name="luby-mis",
        )
