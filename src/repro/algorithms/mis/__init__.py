"""Maximal-independent-set algorithms: Luby's randomized algorithm and the
sequential greedy reference."""

from repro.algorithms.mis.luby import LubyMISAlgorithm, LubyMISConstructor
from repro.algorithms.mis.greedy_mis import greedy_mis_by_identity, GreedyMISConstructor

__all__ = [
    "LubyMISAlgorithm",
    "LubyMISConstructor",
    "greedy_mis_by_identity",
    "GreedyMISConstructor",
]
