"""Sequential greedy maximal independent set (centralized reference).

Processes nodes in increasing identity order and adds a node to the set
whenever none of its neighbours has been added yet.  The result is a maximal
independent set — and therefore also a minimal dominating set, a fact the
dominating-set constructors rely on.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

from repro.core.construction import Constructor
from repro.local.network import Network
from repro.local.randomness import TapeFactory

__all__ = ["greedy_mis_by_identity", "GreedyMISConstructor"]


def greedy_mis_by_identity(network: Network) -> Dict[Hashable, bool]:
    """Greedy MIS by identity order; returns node -> membership flag."""
    in_set: Dict[Hashable, bool] = {}
    for node in sorted(network.nodes(), key=network.identity):
        in_set[node] = not any(in_set.get(u, False) for u in network.neighbors(node))
    return in_set


class GreedyMISConstructor(Constructor):
    """Constructor wrapper around the centralized greedy MIS (global baseline)."""

    name = "greedy-mis-by-identity"
    randomized = False

    def construct(
        self,
        network: Network,
        tape_factory: Optional[TapeFactory] = None,
    ) -> Dict[Hashable, object]:
        return dict(greedy_mis_by_identity(network))
