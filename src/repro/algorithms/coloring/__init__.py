"""Coloring algorithms: Cole–Vishkin, random zero-round coloring, greedy
reference colorings, and constant-time color reduction."""

from repro.algorithms.coloring.cole_vishkin import (
    ColeVishkinResult,
    cole_vishkin_three_coloring,
    ColeVishkinConstructor,
    oriented_cycle_network,
)
from repro.algorithms.coloring.random_coloring import (
    RandomColoringAlgorithm,
    RandomColoringConstructor,
    expected_proper_fraction,
)
from repro.algorithms.coloring.greedy import (
    greedy_coloring_by_identity,
    GreedyColoringConstructor,
)
from repro.algorithms.coloring.reduction import (
    ColorReductionAlgorithm,
    ColorReductionConstructor,
)

__all__ = [
    "ColeVishkinResult",
    "cole_vishkin_three_coloring",
    "ColeVishkinConstructor",
    "oriented_cycle_network",
    "RandomColoringAlgorithm",
    "RandomColoringConstructor",
    "expected_proper_fraction",
    "greedy_coloring_by_identity",
    "GreedyColoringConstructor",
    "ColorReductionAlgorithm",
    "ColorReductionConstructor",
]
