"""Cole–Vishkin 3-coloring of oriented cycles in O(log* n) rounds.

The introduction of the paper recalls Linial's lower bound: the n-node cycle
cannot be 3-colored in fewer than Ω(log* n) rounds, even with randomization
[25, 27].  Cole–Vishkin's deterministic iterated bit-trick matches the bound:
starting from the identities as colors, each round shrinks the number of bits
from ``b`` to ``⌈log₂ b⌉ + 1``, reaching the 6-color range after O(log* n)
iterations; three more rounds shrink 6 colors to 3.

Experiment E4 sweeps the cycle size and confirms the measured round counts
follow ``log*`` growth (and stay wildly below any linear trend), which is the
"shape" of the Ω(log* n) / O(log* n) claims.

The implementation is a *round-faithful simulation*: colors are updated
synchronously and every update at a node reads only that node's current color
and its successor's current color (a 1-hop neighbour), so the number of
iterations reported equals the number of LOCAL rounds a message-passing
execution would take.  Cycles must be *oriented*: each node's input holds the
identity of its successor — use :func:`oriented_cycle_network` to build such
instances (orientation-as-input is the standard setting for Cole–Vishkin).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Optional

from repro.core.construction import Constructor
from repro.graphs.families import cycle_network
from repro.local.network import Network
from repro.local.randomness import TapeFactory

__all__ = [
    "oriented_cycle_network",
    "ColeVishkinResult",
    "cole_vishkin_three_coloring",
    "ColeVishkinConstructor",
]


def oriented_cycle_network(
    n: int,
    ids: str = "random",
    seed: int = 0,
    id_start: int = 1,
) -> Network:
    """A cycle whose inputs encode a consistent orientation.

    The input of every node is the identity of its *successor* in a fixed
    cyclic orientation.  Identities default to the ``"random"`` scheme so the
    initial Cole–Vishkin colors are large and the log* behaviour is visible.
    """
    base = cycle_network(n, ids=ids, seed=seed, id_start=id_start)
    nodes = list(range(n))  # construction order of cycle_network = cyclic order
    successor_inputs = {
        nodes[i]: base.identity(nodes[(i + 1) % n]) for i in range(n)
    }
    return base.with_inputs(successor_inputs)


@dataclass
class ColeVishkinResult:
    """Outcome of a Cole–Vishkin execution.

    Attributes
    ----------
    colors:
        Final colors, one of ``{1, 2, 3}`` per node.
    rounds:
        Total number of LOCAL rounds: bit-reduction iterations plus the three
        6-to-3 reduction rounds.
    reduction_iterations:
        Number of bit-reduction iterations alone.
    """

    colors: Dict[Hashable, int]
    rounds: int
    reduction_iterations: int


def _first_differing_bit(a: int, b: int) -> int:
    """Index of the least-significant bit where ``a`` and ``b`` differ."""
    if a == b:
        raise ValueError("colors of adjacent nodes must differ (CV invariant)")
    xor = a ^ b
    return (xor & -xor).bit_length() - 1


def cole_vishkin_three_coloring(network: Network, max_iterations: int = 200) -> ColeVishkinResult:
    """Run Cole–Vishkin 3-coloring on an oriented cycle.

    The network must be a cycle (2-regular, connected) whose inputs give each
    node the identity of its successor (see :func:`oriented_cycle_network`).
    """
    _validate_oriented_cycle(network)
    successor = {
        node: network.node_with_identity(int(network.input_of(node)))
        for node in network.nodes()
    }
    colors: Dict[Hashable, int] = {node: network.identity(node) for node in network.nodes()}

    iterations = 0
    while any(color >= 6 for color in colors.values()):
        if iterations >= max_iterations:
            raise RuntimeError("Cole–Vishkin did not converge (malformed orientation?)")
        updated: Dict[Hashable, int] = {}
        for node in network.nodes():
            own = colors[node]
            succ = colors[successor[node]]
            k = _first_differing_bit(own, succ)
            bit = (own >> k) & 1
            updated[node] = 2 * k + bit
        colors = updated
        iterations += 1

    # Reduce {0..5} to {0..2}: recolor one color class per round; each class
    # is an independent set, and a cycle node has only 2 neighbours, so a
    # free color in {0, 1, 2} always exists.
    for retired in (5, 4, 3):
        updated = dict(colors)
        for node in network.nodes():
            if colors[node] == retired:
                neighbor_colors = {colors[u] for u in network.neighbors(node)}
                updated[node] = min(c for c in (0, 1, 2) if c not in neighbor_colors)
        colors = updated

    final = {node: color + 1 for node, color in colors.items()}
    return ColeVishkinResult(
        colors=final, rounds=iterations + 3, reduction_iterations=iterations
    )


def _validate_oriented_cycle(network: Network) -> None:
    if network.number_of_nodes() < 3:
        raise ValueError("Cole–Vishkin needs a cycle of at least 3 nodes")
    if any(network.degree(node) != 2 for node in network.nodes()):
        raise ValueError("the network is not a cycle (a node has degree ≠ 2)")
    if not network.is_connected():
        raise ValueError("the network is not a single cycle")
    identities = {network.identity(node) for node in network.nodes()}
    for node in network.nodes():
        raw = network.input_of(node)
        if not isinstance(raw, int) or raw not in identities:
            raise ValueError(
                "every node's input must be the identity of its successor; "
                "build instances with oriented_cycle_network()"
            )
        succ = network.node_with_identity(raw)
        if succ not in network.neighbors(node):
            raise ValueError("a node's declared successor is not one of its neighbours")


class ColeVishkinConstructor(Constructor):
    """Constructor wrapper around :func:`cole_vishkin_three_coloring`.

    The constructor is deterministic and adaptive (the number of rounds grows
    like log* of the largest identity); the rounds used by the latest
    construction are exposed through :attr:`last_rounds`.
    """

    name = "cole-vishkin-3-coloring"
    randomized = False

    def __init__(self) -> None:
        self.last_rounds: Optional[int] = None

    def construct(
        self,
        network: Network,
        tape_factory: Optional[TapeFactory] = None,
    ) -> Dict[Hashable, object]:
        result = cole_vishkin_three_coloring(network)
        self.last_rounds = result.rounds
        return dict(result.colors)
