"""Sequential greedy (deg+1)-coloring — the centralized reference baseline.

Not a LOCAL algorithm: nodes are processed one by one in identity order and
each takes the smallest color unused by its already-colored neighbours.  The
result is a proper coloring using at most ``Δ + 1`` colors, which serves as

* a reference solution when planting "almost correct" configurations for the
  f-resilient experiments (take the greedy coloring, corrupt ``f + 1``
  nodes), and
* the input-promise generator for the constant-time color-reduction
  constructor (:mod:`repro.algorithms.coloring.reduction`).
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

from repro.core.construction import Constructor
from repro.local.network import Network
from repro.local.randomness import TapeFactory

__all__ = ["greedy_coloring_by_identity", "GreedyColoringConstructor"]


def greedy_coloring_by_identity(
    network: Network, palette_size: Optional[int] = None
) -> Dict[Hashable, int]:
    """Greedy proper coloring, processing nodes in increasing identity order.

    Uses colors ``1, 2, ...``; at most ``Δ + 1`` colors are ever needed.  If
    ``palette_size`` is given and the greedy choice would exceed it, a
    ``RuntimeError`` is raised (cannot happen for
    ``palette_size ≥ Δ + 1``).
    """
    colors: Dict[Hashable, int] = {}
    for node in sorted(network.nodes(), key=network.identity):
        used = {colors[u] for u in network.neighbors(node) if u in colors}
        color = 1
        while color in used:
            color += 1
        if palette_size is not None and color > palette_size:
            raise RuntimeError(
                f"greedy coloring needs color {color} > palette size {palette_size}"
            )
        colors[node] = color
    return colors


class GreedyColoringConstructor(Constructor):
    """Constructor wrapper around the centralized greedy coloring.

    Flagged as a *global* baseline: its ``rounds()`` is ``None`` because it
    does not correspond to any constant-round LOCAL execution — it exists to
    provide reference solutions, not to compete with the local algorithms.
    """

    name = "greedy-coloring-by-identity"
    randomized = False

    def __init__(self, palette_size: Optional[int] = None) -> None:
        self.palette_size = palette_size

    def construct(
        self,
        network: Network,
        tape_factory: Optional[TapeFactory] = None,
    ) -> Dict[Hashable, object]:
        return dict(greedy_coloring_by_identity(network, self.palette_size))
