"""Constant-time color reduction under a coloring promise.

Given as input a proper coloring with a constant number ``k`` of colors, the
classical color-reduction algorithm retires one color class per round: nodes
holding the currently retired color simultaneously recolor to the smallest
color of the target palette unused in their neighbourhood (a color class is
an independent set, so simultaneous recoloring is safe, and a node of degree
``d ≤ Δ`` always finds a free color among ``Δ + 1``).  After ``k − (Δ + 1)``
rounds — a constant when ``k`` and ``Δ`` are constants — the coloring uses
the target palette.

This is a genuine message-passing :class:`~repro.local.algorithm.LocalAlgorithm`
and serves as the repository's example of a task that is *both constructible
and decidable in constant time* (the cell the paper fills with weak coloring;
see EXPERIMENTS.md for the documented substitution): the language
"(Δ+1)-coloring, promised a proper k-coloring as input" is in LD(1), and this
algorithm constructs it in ``k − Δ − 1`` rounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.construction import MessagePassingConstructor
from repro.local.algorithm import LocalAlgorithm, NodeContext

__all__ = ["ColorReductionAlgorithm", "ColorReductionConstructor"]


@dataclass
class _ReductionState:
    color: int


class ColorReductionAlgorithm(LocalAlgorithm):
    """Reduce a proper ``initial_palette``-coloring to ``target_palette`` colors.

    Every node's input must be its initial color, an integer in
    ``{1, ..., initial_palette}``, and the input coloring must be proper;
    both are promises the algorithm relies on (garbage in, garbage out — the
    decider of the coloring language will catch violations downstream).
    """

    def __init__(self, initial_palette: int, target_palette: int) -> None:
        if target_palette < 1:
            raise ValueError("the target palette must contain at least one color")
        if initial_palette < target_palette:
            raise ValueError("the initial palette cannot be smaller than the target")
        self.initial_palette = int(initial_palette)
        self.target_palette = int(target_palette)
        self.name = f"color-reduction({initial_palette}->{target_palette})"

    # ------------------------------------------------------------------ #
    def total_rounds(self) -> int:
        """Number of rounds the reduction takes (one per retired color)."""
        return self.initial_palette - self.target_palette

    def initial_state(self, ctx: NodeContext) -> _ReductionState:
        color = ctx.input
        if not isinstance(color, int) or not (1 <= color <= self.initial_palette):
            raise ValueError(
                f"node {ctx.identity} has input {color!r}, expected a color in "
                f"1..{self.initial_palette}"
            )
        return _ReductionState(color=int(color))

    def send(self, state: _ReductionState, ctx: NodeContext, rnd: int) -> object:
        return state.color

    def receive(
        self,
        state: _ReductionState,
        ctx: NodeContext,
        rnd: int,
        inbox: Dict[int, object],
    ) -> _ReductionState:
        retiring = self.initial_palette - rnd + 1
        if retiring <= self.target_palette:
            return state
        if state.color == retiring:
            neighbor_colors = {int(color) for color in inbox.values()}
            for candidate in range(1, self.target_palette + 1):
                if candidate not in neighbor_colors:
                    state.color = candidate
                    break
            else:  # pragma: no cover - impossible when target ≥ degree + 1
                raise RuntimeError(
                    f"node {ctx.identity} found no free color in the target palette; "
                    "is target_palette ≥ Δ + 1?"
                )
        return state

    def finished(self, state: _ReductionState, ctx: NodeContext, rnd: int) -> bool:
        return rnd >= self.total_rounds()

    def output(self, state: _ReductionState, ctx: NodeContext) -> object:
        return state.color


class ColorReductionConstructor(MessagePassingConstructor):
    """Constructor wrapper fixing the palettes and the round budget."""

    def __init__(self, initial_palette: int, target_palette: int) -> None:
        algorithm = ColorReductionAlgorithm(initial_palette, target_palette)
        super().__init__(
            algorithm_factory=lambda: ColorReductionAlgorithm(
                initial_palette, target_palette
            ),
            randomized=False,
            rounds=algorithm.total_rounds(),
            name=algorithm.name,
        )
        self.initial_palette = initial_palette
        self.target_palette = target_palette
