"""The trivial zero-round randomized coloring (the ε-slack workhorse).

Section 1.1 of the paper: "the trivial randomized algorithm in which every
node picks independently uniformly at random a color 1, 2, or 3, enables to
guarantee that, with constant probability, a fraction 1 − ε of the nodes are
properly colored".  This is the algorithm showing that randomization *helps*
for ε-slack relaxations; it is the randomized side of experiments E2 and E8.

For a node of degree ``d`` in the cycle (d = 2) with ``q`` colors, the
probability that the node conflicts with at least one neighbour is at most
``d/q``; :func:`expected_proper_fraction` returns the exact expected fraction
of properly colored nodes on a cycle, used as the analytic reference curve in
the benches.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

from repro.core.construction import BallConstructor
from repro.engine.construct import UniformInt, uniform_int
from repro.local.algorithm import BallAlgorithm
from repro.local.ball import BallView
from repro.local.randomness import RandomTape

__all__ = [
    "RandomColoringAlgorithm",
    "RandomColoringConstructor",
    "expected_proper_fraction",
]


class RandomColoringAlgorithm(BallAlgorithm):
    """Zero-round Monte-Carlo coloring: pick a uniform color, ignore everyone."""

    randomized = True
    radius = 0

    def __init__(self, num_colors: int = 3) -> None:
        if num_colors < 1:
            raise ValueError("need at least one color")
        self.num_colors = int(num_colors)
        self.name = f"random-{num_colors}-coloring"

    def compute(self, ball: BallView, tape: Optional[RandomTape] = None) -> object:
        if tape is None:
            raise ValueError("the random coloring algorithm needs a random tape")
        return tape.randint(1, self.num_colors)

    def output_program(self, ball: BallView) -> UniformInt:
        """The construction-engine form of :meth:`compute`: one uniform
        ``randint(1, num_colors)`` draw, independent of the ball."""
        return uniform_int(1, self.num_colors)


class RandomColoringConstructor(BallConstructor):
    """Constructor wrapper around :class:`RandomColoringAlgorithm`."""

    def __init__(self, num_colors: int = 3) -> None:
        algorithm = RandomColoringAlgorithm(num_colors)
        super().__init__(algorithm, name=algorithm.name)
        self.num_colors = num_colors


def expected_proper_fraction(num_colors: int, degree: int = 2) -> float:
    """Expected fraction of properly colored nodes under uniform coloring.

    A node is properly colored iff none of its ``degree`` neighbours picked
    its color; colors are independent and uniform over ``num_colors``, so the
    probability is ``(1 − 1/q)^degree``.  On the cycle (degree 2) with three
    colors this is ``4/9 ≈ 0.444``, and by linearity of expectation the
    expected fraction of bad nodes is ``1 − (1 − 1/q)^2 = 5/9`` — well below
    1, which is why a constant fraction of properly colored nodes is achieved
    with constant probability (Markov), the paper's ε-slack claim.
    """
    if num_colors < 1:
        raise ValueError("need at least one color")
    if degree < 0:
        raise ValueError("degree must be non-negative")
    return (1.0 - 1.0 / num_colors) ** degree
