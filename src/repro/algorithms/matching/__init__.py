"""Maximal-matching algorithms: the mutual-proposal distributed algorithm and
the sequential greedy reference."""

from repro.algorithms.matching.proposal_matching import (
    ProposalMatchingAlgorithm,
    ProposalMatchingConstructor,
    greedy_maximal_matching,
)

__all__ = [
    "ProposalMatchingAlgorithm",
    "ProposalMatchingConstructor",
    "greedy_maximal_matching",
]
