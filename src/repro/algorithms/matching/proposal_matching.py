"""Maximal matching: a mutual-proposal distributed algorithm plus the greedy
sequential reference.

The distributed algorithm repeats a two-round phase:

* **status round** — every node broadcasts whether it is still unmatched;
* **proposal round** — every unmatched node points at its smallest-identity
  unmatched neighbour and broadcasts the pointer; two nodes that point at
  each other become matched.

In every phase the globally smallest-identity unmatched node that still has
an unmatched neighbour gets matched (its unmatched neighbours all point at
it), so the algorithm terminates after at most ``n/2`` phases with a maximal
matching.  It is not a state-of-the-art algorithm — O(log n)-round randomized
algorithms exist — but it is simple, deterministic, and exercises per-node
pointers through the message-passing simulator; the matching language of
:mod:`repro.core.lcl` checks its output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Tuple

from repro.core.construction import MessagePassingConstructor
from repro.local.algorithm import LocalAlgorithm, NodeContext
from repro.local.network import Network

__all__ = [
    "greedy_maximal_matching",
    "ProposalMatchingAlgorithm",
    "ProposalMatchingConstructor",
]


def greedy_maximal_matching(network: Network) -> Dict[Hashable, Optional[int]]:
    """Sequential greedy maximal matching (centralized reference).

    Edges are scanned in lexicographic identity order; an edge is added when
    both endpoints are free.  Returns, for every node, the identity of its
    partner or ``None``.
    """
    partner: Dict[Hashable, Optional[int]] = {node: None for node in network.nodes()}
    edges = sorted(
        network.edges(),
        key=lambda edge: tuple(sorted((network.identity(edge[0]), network.identity(edge[1])))),
    )
    for u, v in edges:
        if partner[u] is None and partner[v] is None:
            partner[u] = network.identity(v)
            partner[v] = network.identity(u)
    return partner


@dataclass
class _MatchingState:
    partner: Optional[int] = None
    #: identity -> unmatched? knowledge about neighbours, refreshed each phase.
    neighbor_unmatched: Dict[int, bool] = None  # type: ignore[assignment]
    #: pointer chosen in the current phase (identity of the proposee).
    pointer: Optional[int] = None
    #: set once the node knows no unmatched neighbour remains.
    settled: bool = False

    def __post_init__(self) -> None:
        if self.neighbor_unmatched is None:
            self.neighbor_unmatched = {}


class ProposalMatchingAlgorithm(LocalAlgorithm):
    """The mutual-proposal maximal-matching algorithm (two rounds per phase)."""

    name = "proposal-matching"

    def initial_state(self, ctx: NodeContext) -> _MatchingState:
        return _MatchingState()

    def send(self, state: _MatchingState, ctx: NodeContext, rnd: int) -> object:
        status_round = rnd % 2 == 1
        if status_round:
            return ("status", ctx.identity, state.partner is None)
        if state.partner is not None or state.pointer is None:
            return ("propose", ctx.identity, None)
        return ("propose", ctx.identity, state.pointer)

    def receive(
        self,
        state: _MatchingState,
        ctx: NodeContext,
        rnd: int,
        inbox: Dict[int, object],
    ) -> _MatchingState:
        status_round = rnd % 2 == 1
        if status_round:
            state.neighbor_unmatched = {
                message[1]: bool(message[2])
                for message in inbox.values()
                if isinstance(message, tuple) and message[0] == "status"
            }
            unmatched_neighbors = [
                ident for ident, free in state.neighbor_unmatched.items() if free
            ]
            if state.partner is None:
                if unmatched_neighbors:
                    state.pointer = min(unmatched_neighbors)
                else:
                    state.pointer = None
                    state.settled = True
            return state
        # Proposal round: match mutual pointers.
        if state.partner is None and state.pointer is not None:
            for message in inbox.values():
                if (
                    isinstance(message, tuple)
                    and message[0] == "propose"
                    and message[1] == state.pointer
                    and message[2] == ctx.identity
                ):
                    state.partner = state.pointer
                    break
        return state

    def finished(self, state: _MatchingState, ctx: NodeContext, rnd: int) -> bool:
        return state.partner is not None or state.settled

    def output(self, state: _MatchingState, ctx: NodeContext) -> object:
        return state.partner


class ProposalMatchingConstructor(MessagePassingConstructor):
    """Constructor wrapper: runs the proposal matching until termination."""

    def __init__(self, max_rounds: int = 50_000) -> None:
        super().__init__(
            algorithm_factory=ProposalMatchingAlgorithm,
            randomized=False,
            rounds=None,
            max_rounds=max_rounds,
            name="proposal-matching",
        )
