"""Classic LOCAL algorithms used as baselines and workload generators.

The paper's arguments repeatedly refer to well-known construction algorithms
— the Ω(log* n)-round 3-coloring of the cycle and its matching Cole–Vishkin
upper bound, the trivial zero-round randomized coloring that solves ε-slack
relaxations, color reduction under a coloring promise, Luby's MIS, maximal
matching, minimal dominating sets, and Moser–Tardos style constraint fixing.
They are implemented here on top of :mod:`repro.local` and exposed through
:class:`~repro.core.construction.Constructor` wrappers so the decision /
relaxation machinery of :mod:`repro.core` can evaluate their outputs.
"""

from repro.algorithms.coloring.cole_vishkin import (
    ColeVishkinResult,
    cole_vishkin_three_coloring,
    ColeVishkinConstructor,
    oriented_cycle_network,
)
from repro.algorithms.coloring.random_coloring import (
    RandomColoringAlgorithm,
    RandomColoringConstructor,
    expected_proper_fraction,
)
from repro.algorithms.coloring.greedy import (
    greedy_coloring_by_identity,
    GreedyColoringConstructor,
)
from repro.algorithms.coloring.reduction import (
    ColorReductionAlgorithm,
    ColorReductionConstructor,
)
from repro.algorithms.mis.luby import LubyMISAlgorithm, LubyMISConstructor
from repro.algorithms.mis.greedy_mis import (
    greedy_mis_by_identity,
    GreedyMISConstructor,
)
from repro.algorithms.matching.proposal_matching import (
    ProposalMatchingAlgorithm,
    ProposalMatchingConstructor,
    greedy_maximal_matching,
)
from repro.algorithms.dominating_set.mis_dominating_set import (
    MISDominatingSetConstructor,
    greedy_minimal_dominating_set,
)
from repro.algorithms.lll.resampling import (
    ResamplingLLLConstructor,
    parallel_resampling_not_all_equal,
)

__all__ = [
    "ColeVishkinResult",
    "cole_vishkin_three_coloring",
    "ColeVishkinConstructor",
    "oriented_cycle_network",
    "RandomColoringAlgorithm",
    "RandomColoringConstructor",
    "expected_proper_fraction",
    "greedy_coloring_by_identity",
    "GreedyColoringConstructor",
    "ColorReductionAlgorithm",
    "ColorReductionConstructor",
    "LubyMISAlgorithm",
    "LubyMISConstructor",
    "greedy_mis_by_identity",
    "GreedyMISConstructor",
    "ProposalMatchingAlgorithm",
    "ProposalMatchingConstructor",
    "greedy_maximal_matching",
    "MISDominatingSetConstructor",
    "greedy_minimal_dominating_set",
    "ResamplingLLLConstructor",
    "parallel_resampling_not_all_equal",
]
