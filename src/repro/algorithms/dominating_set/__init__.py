"""Minimal-dominating-set constructors (via maximal independent sets)."""

from repro.algorithms.dominating_set.mis_dominating_set import (
    MISDominatingSetConstructor,
    greedy_minimal_dominating_set,
)

__all__ = ["MISDominatingSetConstructor", "greedy_minimal_dominating_set"]
