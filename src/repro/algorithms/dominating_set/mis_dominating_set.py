"""Minimal dominating sets via maximal independent sets.

Every maximal independent set is a minimal dominating set: maximality gives
domination, and independence makes every member its own private dominated
node, which gives minimality.  The distributed constructor therefore simply
runs Luby's MIS; the sequential reference runs the greedy MIS.  The output is
checked against the :class:`repro.core.lcl.MinimalDominatingSet` language.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

from repro.algorithms.mis.greedy_mis import greedy_mis_by_identity
from repro.algorithms.mis.luby import LubyMISConstructor
from repro.core.construction import Constructor
from repro.local.network import Network
from repro.local.randomness import TapeFactory

__all__ = ["greedy_minimal_dominating_set", "MISDominatingSetConstructor"]


def greedy_minimal_dominating_set(network: Network) -> Dict[Hashable, bool]:
    """Sequential reference: the greedy MIS, read as a dominating set."""
    return greedy_mis_by_identity(network)


class MISDominatingSetConstructor(Constructor):
    """Distributed minimal-dominating-set constructor (Luby MIS underneath)."""

    name = "mis-dominating-set"
    randomized = True

    def __init__(self, max_rounds: int = 10_000) -> None:
        self._mis = LubyMISConstructor(max_rounds=max_rounds)
        #: Rounds used by the most recent construction (from the MIS run).
        self.last_rounds: Optional[int] = None

    def construct(
        self,
        network: Network,
        tape_factory: Optional[TapeFactory] = None,
    ) -> Dict[Hashable, object]:
        outputs = self._mis.construct(network, tape_factory=tape_factory)
        self.last_rounds = self._mis.last_rounds
        return outputs
