"""Parallel resampling for the not-all-equal constraint language.

The paper motivates f-resilient relaxations with the relaxed constructive
Lovász Local Lemma of Chung–Pettie–Su: some nodes may be left with their
"bad" event holding.  Our stand-in constraint system is
:class:`repro.core.lcl.NotAllEqualLLL`: every node holds a bit, and the bad
event at a node is that its whole closed neighbourhood is monochromatic.

The constructor below is a Moser–Tardos style parallel resampler: every node
starts with a random bit; while bad events exist, every node involved in at
least one bad event resamples its bit, one synchronous round per iteration.
For graphs of minimum degree ≥ 1 and bounded degree the expected number of
iterations is small (each bad event dies with probability ≥ 1/2 per round and
new ones are created with controlled probability); a round cap turns the Las
Vegas procedure into the Monte-Carlo constructor the paper's framework
expects — with a generous cap the failure probability is tiny, with a cap of
zero it degenerates to the purely random assignment used in the ε-slack
experiments.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Tuple

from repro.core.construction import Constructor
from repro.core.languages import Configuration
from repro.core.lcl import NotAllEqualLLL
from repro.local.network import Network
from repro.local.randomness import TapeFactory

__all__ = ["parallel_resampling_not_all_equal", "ResamplingLLLConstructor"]


def parallel_resampling_not_all_equal(
    network: Network,
    tape_factory: Optional[TapeFactory] = None,
    max_iterations: int = 100,
) -> Tuple[Dict[Hashable, int], int]:
    """Assign bits so that no closed neighbourhood is monochromatic.

    Returns the bit assignment and the number of resampling iterations used
    (0 means the initial random assignment was already valid).  The returned
    assignment may still contain violations if ``max_iterations`` is hit —
    callers check with the language, as for any Monte-Carlo constructor.
    """
    factory = tape_factory if tape_factory is not None else TapeFactory(0)
    language = NotAllEqualLLL()
    bits: Dict[Hashable, int] = {
        node: factory.tape_for(network.identity(node)).bit() for node in network.nodes()
    }
    iterations = 0
    for iteration in range(1, max_iterations + 1):
        configuration = Configuration(network, bits)
        violated = language.bad_nodes(configuration)
        if not violated:
            break
        # Every node involved in a bad event resamples (the bad event at v
        # involves the closed neighbourhood of v).
        to_resample = set(violated)
        for node in violated:
            to_resample.update(network.neighbors(node))
        for node in to_resample:
            tape = factory.tape_for(network.identity(node))
            bits[node] = tape.bit()
        iterations = iteration
    return bits, iterations


class ResamplingLLLConstructor(Constructor):
    """Constructor wrapper around the parallel resampler."""

    name = "parallel-resampling-not-all-equal"
    randomized = True

    def __init__(self, max_iterations: int = 100) -> None:
        self.max_iterations = int(max_iterations)
        #: Iterations used by the most recent construction.
        self.last_iterations: Optional[int] = None

    def construct(
        self,
        network: Network,
        tape_factory: Optional[TapeFactory] = None,
    ) -> Dict[Hashable, object]:
        bits, iterations = parallel_resampling_not_all_equal(
            network, tape_factory=tape_factory, max_iterations=self.max_iterations
        )
        self.last_iterations = iterations
        return dict(bits)
