"""Constraint-fixing by parallel resampling (Moser–Tardos style), for the
not-all-equal constraint language standing in for the paper's LLL examples."""

from repro.algorithms.lll.resampling import (
    ResamplingLLLConstructor,
    parallel_resampling_not_all_equal,
)

__all__ = ["ResamplingLLLConstructor", "parallel_resampling_not_all_equal"]
