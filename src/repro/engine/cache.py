"""Content-addressed JSON cache for experiment results.

Repeated ``python -m repro run`` invocations recompute every grid point from
scratch even though the experiments are deterministic functions of their
parameters and seed.  :class:`ResultCache` memoises them on disk:

* **Key** — the SHA-256 digest of the canonical JSON encoding of
  ``{schema, experiment_id, parameters, version}`` (:func:`request_cache_key`),
  where ``parameters`` is the **fully normalized** mapping produced by the
  experiment's :class:`~repro.harness.registry.ExperimentSpec` (every
  parameter present, seed included when the spec declares one) and
  ``version`` is :data:`repro.__version__`.  Any change to the workload
  parameters, the seed, or the package version therefore produces a fresh
  key; bumping the package version is the (only) invalidation rule, so
  results can never leak across releases whose numerics may differ.  The
  ``schema`` marker separates the key space from the legacy
  :func:`cache_key` scheme (raw kwargs + top-level seed), so old-style and
  new-style keys can never collide.
* **Location** — the directory given explicitly, else the
  ``REPRO_CACHE_DIR`` environment variable, else ``.repro-cache/`` under the
  current working directory.  One ``<key>.json`` file per entry, holding the
  key fields next to the payload for inspectability.

The cache stores plain JSON payloads (the CLI stores
:meth:`~repro.harness.results.ExperimentResult.to_dict` dumps) and is safe
to delete at any time.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Mapping, Optional

from repro.obs import get_recorder

__all__ = [
    "CacheStats",
    "ResultCache",
    "cache_key",
    "request_cache_key",
    "default_cache_dir",
]

#: Version of the key layout of :func:`request_cache_key`.  Bump when the
#: key fields change shape; the field's presence alone already separates the
#: new key space from the legacy :func:`cache_key` encoding.
REQUEST_KEY_SCHEMA = 2

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """The cache directory: ``$REPRO_CACHE_DIR`` or ``./.repro-cache``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    return Path.cwd() / ".repro-cache"


def _canonical(value: object) -> object:
    """Make a parameter structure JSON-encodable and order-insensitive."""
    if isinstance(value, Mapping):
        return {
            str(key): _canonical(val)
            for key, val in sorted(value.items(), key=lambda kv: str(kv[0]))
        }
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def cache_key(
    experiment_id: str,
    parameters: Mapping[str, object],
    seed: Optional[int],
    version: Optional[str] = None,
) -> str:
    """The **legacy** content address: raw keyword dicts plus a top-level
    seed field.  Kept for backward compatibility with existing caches and
    external callers; new code should address runs through
    :func:`request_cache_key` (normally via
    :meth:`repro.harness.registry.ExperimentSpec.cache_key`)."""
    if version is None:
        from repro import __version__ as version
    fields = {
        "experiment_id": str(experiment_id),
        "parameters": _canonical(parameters),
        "seed": seed,
        "version": str(version),
    }
    encoded = json.dumps(fields, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf8")).hexdigest()


def request_cache_key(
    experiment_id: str,
    parameters: Mapping[str, object],
    version: Optional[str] = None,
) -> str:
    """The canonical content address of one run request.

    ``parameters`` must be the fully normalized mapping of the experiment's
    spec (defaults applied, sequences as lists, seed inside the mapping when
    the spec declares one).  The encoded fields carry a ``schema`` marker and
    no top-level ``seed``, so a request key can never collide with a legacy
    :func:`cache_key` (whose encoding always has a ``seed`` field and no
    ``schema``).
    """
    if version is None:
        from repro import __version__ as version
    fields = {
        "schema": REQUEST_KEY_SCHEMA,
        "experiment_id": str(experiment_id),
        "parameters": _canonical(parameters),
        "version": str(version),
    }
    encoded = json.dumps(fields, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf8")).hexdigest()


@dataclass
class CacheStats:
    """Per-instance counters of one :class:`ResultCache`'s traffic.

    ``hits``/``misses`` partition the :meth:`ResultCache.get` calls;
    ``corrupt`` counts the subset of misses caused by an *existing* entry
    that failed to parse or had the wrong shape (these are also misses);
    ``writes`` counts :meth:`ResultCache.put` calls and ``evictions`` the
    entries removed by :meth:`ResultCache.clear`.
    """

    hits: int = 0
    misses: int = 0
    writes: int = 0
    corrupt: int = 0
    evictions: int = 0

    def as_dict(self) -> Dict[str, int]:
        return asdict(self)


class ResultCache:
    """A directory of content-addressed JSON results.

    Parameters
    ----------
    directory:
        Cache directory; defaults to :func:`default_cache_dir`.  Created
        lazily on the first :meth:`put`.

    Every instance tracks its own traffic in :attr:`stats`
    (:class:`CacheStats`), and mirrors the same signals into the ambient
    :mod:`repro.obs` recorder: ``cache.hit``/``cache.miss``/``cache.write``/
    ``cache.corrupt`` counters plus a ``cache.lookup_seconds`` latency
    histogram (lookups are additionally wrapped in ``cache.lookup`` /
    ``cache.write`` spans when a trace recorder is installed).
    """

    def __init__(self, directory: Optional[Path] = None) -> None:
        self.directory = Path(directory) if directory is not None else default_cache_dir()
        self.stats = CacheStats()

    def path_for(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    # ------------------------------------------------------------------ #
    def get(self, key: str) -> Optional[Dict[str, object]]:
        """The cached payload for a key, or ``None`` on miss (a corrupt or
        truncated entry also reads as a miss rather than an error)."""
        recorder = get_recorder()
        with recorder.span("cache.lookup", key=key[:16]) as span:
            started = time.perf_counter()
            path = self.path_for(key)
            entry: object = None
            corrupt = False
            try:
                with path.open("r", encoding="utf8") as handle:
                    entry = json.load(handle)
            except FileNotFoundError:
                pass
            except (OSError, UnicodeDecodeError, json.JSONDecodeError):
                corrupt = True
            payload = entry.get("payload") if isinstance(entry, dict) else None
            if payload is not None and not isinstance(payload, dict):
                payload = None
            if payload is None and entry is not None:
                # The entry existed but did not hold a payload-shaped dict.
                corrupt = True
            recorder.histogram("cache.lookup_seconds", time.perf_counter() - started)
            if corrupt:
                self.stats.corrupt += 1
                recorder.counter("cache.corrupt")
            if payload is None:
                self.stats.misses += 1
                recorder.counter("cache.miss")
                span.annotate(outcome="corrupt" if corrupt else "miss")
                return None
            self.stats.hits += 1
            recorder.counter("cache.hit")
            span.annotate(outcome="hit")
            return payload

    def put(
        self,
        key: str,
        payload: Mapping[str, object],
        key_fields: Optional[Mapping[str, object]] = None,
    ) -> Path:
        """Store a payload under a key; ``key_fields`` (experiment id,
        parameters, ...) are saved alongside for human inspection."""
        recorder = get_recorder()
        with recorder.span("cache.write", key=key[:16]):
            self.directory.mkdir(parents=True, exist_ok=True)
            path = self.path_for(key)
            entry = {
                "key": key,
                "key_fields": _canonical(dict(key_fields)) if key_fields is not None else None,
                "payload": dict(payload),
            }
            # Unique temp name + atomic rename: concurrent writers of the same
            # key each publish a complete entry, last one wins.
            descriptor, tmp_name = tempfile.mkstemp(
                dir=self.directory, prefix=f".{key[:16]}-", suffix=".tmp"
            )
            try:
                with os.fdopen(descriptor, "w", encoding="utf8") as handle:
                    json.dump(entry, handle, indent=2, sort_keys=True)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
            self.stats.writes += 1
            recorder.counter("cache.write")
        return path

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*.json"))

    def clear(self) -> int:
        """Delete every entry; returns the number of entries removed."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.json"):
                path.unlink()
                removed += 1
        self.stats.evictions += removed
        return removed

    def describe(self) -> Dict[str, object]:
        """On-disk shape of the cache (for ``python -m repro cache stats``):
        directory, entry count, and total payload bytes."""
        entries = 0
        total_bytes = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.json"):
                entries += 1
                try:
                    total_bytes += path.stat().st_size
                except OSError:
                    pass
        return {
            "directory": str(self.directory),
            "entries": entries,
            "total_bytes": total_bytes,
        }
