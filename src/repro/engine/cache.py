"""Content-addressed JSON cache for experiment results.

Repeated ``python -m repro run`` invocations recompute every grid point from
scratch even though the experiments are deterministic functions of their
parameters and seed.  :class:`ResultCache` memoises them on disk:

* **Key** — the SHA-256 digest of the canonical JSON encoding of
  ``{schema, experiment_id, parameters, version}`` (:func:`request_cache_key`),
  where ``parameters`` is the **fully normalized** mapping produced by the
  experiment's :class:`~repro.harness.registry.ExperimentSpec` (every
  parameter present, seed included when the spec declares one) and
  ``version`` is :data:`repro.__version__`.  Any change to the workload
  parameters, the seed, or the package version therefore produces a fresh
  key; bumping the package version is the (only) invalidation rule, so
  results can never leak across releases whose numerics may differ.  The
  ``schema`` marker separates the key space from the legacy
  :func:`cache_key` scheme (raw kwargs + top-level seed), so old-style and
  new-style keys can never collide.
* **Location** — the directory given explicitly, else the
  ``REPRO_CACHE_DIR`` environment variable, else ``.repro-cache/`` under the
  current working directory.  Entries live in a **sharded two-level layout**
  — ``<dir>/<key[:2]>/<key>.json`` — so a hot cache never concentrates
  thousands of files in one directory; entries written by older releases at
  the flat ``<dir>/<key>.json`` location remain readable.
* **Concurrency** — writes are atomic (unique tempfile in the target shard +
  ``os.replace``), so concurrent writers — threads of the experiment
  service, parallel CLI runs, or separate processes — each publish a
  complete entry and readers never observe a torn file.  Per-instance
  traffic counters are lock-protected.
* **Eviction** — optional and off by default: ``ttl_seconds`` expires
  entries by age, ``max_entries``/``max_bytes`` bound the cache size with
  least-recently-*used* eviction (hits refresh an entry's mtime).  Evictions
  are accounted in :attr:`ResultCache.stats` (:class:`CacheStats`) and the
  ambient :mod:`repro.obs` counters, so the service's ``/metrics`` endpoint
  sees them.

The cache stores plain JSON payloads (the CLI stores
:meth:`~repro.harness.results.ExperimentResult.to_dict` dumps) and is safe
to delete at any time.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from repro.obs import get_recorder

__all__ = [
    "CacheStats",
    "ResultCache",
    "cache_key",
    "request_cache_key",
    "default_cache_dir",
]

#: Version of the key layout of :func:`request_cache_key`.  Bump when the
#: key fields change shape; the field's presence alone already separates the
#: new key space from the legacy :func:`cache_key` encoding.
REQUEST_KEY_SCHEMA = 2

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Leading hex digits of the key that name an entry's shard directory.
SHARD_CHARS = 2


def default_cache_dir() -> Path:
    """The cache directory: ``$REPRO_CACHE_DIR`` or ``./.repro-cache``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    return Path.cwd() / ".repro-cache"


def _canonical(value: object) -> object:
    """Make a parameter structure JSON-encodable and order-insensitive."""
    if isinstance(value, Mapping):
        return {
            str(key): _canonical(val)
            for key, val in sorted(value.items(), key=lambda kv: str(kv[0]))
        }
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def cache_key(
    experiment_id: str,
    parameters: Mapping[str, object],
    seed: Optional[int],
    version: Optional[str] = None,
) -> str:
    """The **legacy** content address: raw keyword dicts plus a top-level
    seed field.  Kept for backward compatibility with existing caches and
    external callers; new code should address runs through
    :func:`request_cache_key` (normally via
    :meth:`repro.harness.registry.ExperimentSpec.cache_key`)."""
    if version is None:
        from repro import __version__ as version
    fields = {
        "experiment_id": str(experiment_id),
        "parameters": _canonical(parameters),
        "seed": seed,
        "version": str(version),
    }
    encoded = json.dumps(fields, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf8")).hexdigest()


def request_cache_key(
    experiment_id: str,
    parameters: Mapping[str, object],
    version: Optional[str] = None,
) -> str:
    """The canonical content address of one run request.

    ``parameters`` must be the fully normalized mapping of the experiment's
    spec (defaults applied, sequences as lists, seed inside the mapping when
    the spec declares one).  The encoded fields carry a ``schema`` marker and
    no top-level ``seed``, so a request key can never collide with a legacy
    :func:`cache_key` (whose encoding always has a ``seed`` field and no
    ``schema``).
    """
    if version is None:
        from repro import __version__ as version
    fields = {
        "schema": REQUEST_KEY_SCHEMA,
        "experiment_id": str(experiment_id),
        "parameters": _canonical(parameters),
        "version": str(version),
    }
    encoded = json.dumps(fields, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf8")).hexdigest()


@dataclass
class CacheStats:
    """Per-instance counters of one :class:`ResultCache`'s traffic.

    ``hits``/``misses`` partition the :meth:`ResultCache.get` calls;
    ``corrupt`` counts the subset of misses caused by an *existing* entry
    that failed to parse or had the wrong shape (these are also misses);
    ``writes`` counts :meth:`ResultCache.put` calls and ``evictions`` the
    entries removed by :meth:`ResultCache.clear`, TTL expiry, or the
    LRU size bound.
    """

    hits: int = 0
    misses: int = 0
    writes: int = 0
    corrupt: int = 0
    evictions: int = 0

    def as_dict(self) -> Dict[str, int]:
        return asdict(self)


class ResultCache:
    """A sharded directory of content-addressed JSON results.

    Parameters
    ----------
    directory:
        Cache directory; defaults to :func:`default_cache_dir`.  Created
        lazily on the first :meth:`put`.
    ttl_seconds:
        When set, entries older than this (by mtime) read as misses and are
        deleted on sight; ``None`` (default) disables expiry.
    max_entries / max_bytes:
        When set, :meth:`put` evicts least-recently-used entries (hits
        refresh recency) until the cache fits the bound; ``None`` (default)
        leaves the cache unbounded.

    Every instance tracks its own traffic in :attr:`stats`
    (:class:`CacheStats`, lock-protected so the experiment service's worker
    threads can share one instance), and mirrors the same signals into the
    ambient :mod:`repro.obs` recorder: ``cache.hit``/``cache.miss``/
    ``cache.write``/``cache.corrupt``/``cache.evict`` counters plus a
    ``cache.lookup_seconds`` latency histogram (lookups are additionally
    wrapped in ``cache.lookup`` / ``cache.write`` spans when a trace
    recorder is installed).
    """

    def __init__(
        self,
        directory: Optional[Path] = None,
        ttl_seconds: Optional[float] = None,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ) -> None:
        self.directory = Path(directory) if directory is not None else default_cache_dir()
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive (or None to disable expiry)")
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be at least 1 (or None for unbounded)")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be at least 1 (or None for unbounded)")
        self.ttl_seconds = ttl_seconds
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.stats = CacheStats()  # guarded-by: _stats_lock
        self._stats_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    def path_for(self, key: str) -> Path:
        """The sharded on-disk location of a key (where writes land)."""
        return self.directory / key[:SHARD_CHARS] / f"{key}.json"

    def _legacy_path(self, key: str) -> Path:
        """The flat pre-shard location (read fallback for old caches)."""
        return self.directory / f"{key}.json"

    def _iter_entries(self) -> Iterator[Path]:
        """Every entry file: the sharded layout plus legacy flat files."""
        if not self.directory.is_dir():
            return
        yield from self.directory.glob("*.json")
        yield from self.directory.glob(f"{'?' * SHARD_CHARS}/*.json")

    def _count(self, field: str, value: int = 1) -> None:
        with self._stats_lock:
            setattr(self.stats, field, getattr(self.stats, field) + value)

    # ------------------------------------------------------------------ #
    def get(self, key: str) -> Optional[Dict[str, object]]:
        """The cached payload for a key, or ``None`` on miss (a corrupt or
        truncated entry also reads as a miss rather than an error)."""
        recorder = get_recorder()
        with recorder.span("cache.lookup", key=key[:16]) as span:
            started = time.perf_counter()
            path = self.path_for(key)
            if not path.is_file():
                legacy = self._legacy_path(key)
                if legacy.is_file():
                    path = legacy
            entry: object = None
            corrupt = False
            expired = False
            try:
                if self.ttl_seconds is not None:
                    age = time.time() - path.stat().st_mtime
                    if age > self.ttl_seconds:
                        expired = True
                        if self._remove_entry(path):
                            self._count("evictions")
                            recorder.counter("cache.evict")
                if not expired:
                    with path.open("r", encoding="utf8") as handle:
                        entry = json.load(handle)
            except FileNotFoundError:
                pass
            except (OSError, UnicodeDecodeError, json.JSONDecodeError):
                corrupt = True
            payload = entry.get("payload") if isinstance(entry, dict) else None
            if payload is not None and not isinstance(payload, dict):
                payload = None
            if payload is None and entry is not None:
                # The entry existed but did not hold a payload-shaped dict.
                corrupt = True
            recorder.histogram("cache.lookup_seconds", time.perf_counter() - started)
            if corrupt:
                self._count("corrupt")
                recorder.counter("cache.corrupt")
            if payload is None:
                self._count("misses")
                recorder.counter("cache.miss")
                span.annotate(outcome="corrupt" if corrupt else "miss")
                return None
            if self.max_entries is not None or self.max_bytes is not None:
                # Refresh recency so the LRU bound keeps hot entries.
                try:
                    os.utime(path, None)
                except OSError:
                    pass
            self._count("hits")
            recorder.counter("cache.hit")
            span.annotate(outcome="hit")
            return payload

    def put(
        self,
        key: str,
        payload: Mapping[str, object],
        key_fields: Optional[Mapping[str, object]] = None,
    ) -> Path:
        """Store a payload under a key; ``key_fields`` (experiment id,
        parameters, ...) are saved alongside for human inspection."""
        recorder = get_recorder()
        with recorder.span("cache.write", key=key[:16]):
            path = self.path_for(key)
            path.parent.mkdir(parents=True, exist_ok=True)
            entry = {
                "key": key,
                "key_fields": _canonical(dict(key_fields)) if key_fields is not None else None,
                "payload": dict(payload),
            }
            # Unique temp name in the target shard + atomic rename:
            # concurrent writers of the same key each publish a complete
            # entry, last one wins, and readers never see a torn file.
            descriptor, tmp_name = tempfile.mkstemp(
                dir=path.parent, prefix=f".{key[:16]}-", suffix=".tmp"
            )
            try:
                with os.fdopen(descriptor, "w", encoding="utf8") as handle:
                    json.dump(entry, handle, indent=2, sort_keys=True)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
            self._count("writes")
            recorder.counter("cache.write")
        if self.max_entries is not None or self.max_bytes is not None or (
            self.ttl_seconds is not None
        ):
            self.evict()
        return path

    def _remove_entry(self, path: Path) -> bool:
        """Best-effort unlink (a concurrent evictor may win the race)."""
        try:
            path.unlink()
            return True
        except OSError:
            return False

    def evict(self, now: Optional[float] = None) -> int:
        """Apply the eviction policy; returns the number of entries removed.

        TTL-expired entries go first, then the least-recently-used entries
        until both ``max_entries`` and ``max_bytes`` are satisfied.  Safe to
        call concurrently: racing evictors simply find fewer files.
        """
        if not self.directory.is_dir():
            return 0
        now = time.time() if now is None else now
        survivors: List[Tuple[float, int, Path]] = []
        removed = 0
        for path in self._iter_entries():
            try:
                status = path.stat()
            except OSError:
                continue
            if self.ttl_seconds is not None and now - status.st_mtime > self.ttl_seconds:
                if self._remove_entry(path):
                    removed += 1
                continue
            survivors.append((status.st_mtime, status.st_size, path))
        survivors.sort(key=lambda item: item[0])  # oldest first
        count = len(survivors)
        total = sum(size for _, size, _ in survivors)
        index = 0
        while index < count and (
            (self.max_entries is not None and count - index > self.max_entries)
            or (self.max_bytes is not None and total > self.max_bytes)
        ):
            _, size, path = survivors[index]
            if self._remove_entry(path):
                removed += 1
            total -= size
            index += 1
        if removed:
            self._count("evictions", removed)
            get_recorder().counter("cache.evict", removed)
        return removed

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file() or self._legacy_path(key).is_file()

    def __len__(self) -> int:
        return sum(1 for _ in self._iter_entries())

    def clear(self) -> int:
        """Delete every entry; returns the number of entries removed."""
        removed = 0
        for path in self._iter_entries():
            if self._remove_entry(path):
                removed += 1
        if self.directory.is_dir():
            for shard in self.directory.glob("?" * SHARD_CHARS):
                if shard.is_dir():
                    try:
                        shard.rmdir()
                    except OSError:
                        pass  # non-empty (e.g. an in-flight temp file)
        self._count("evictions", removed)
        return removed

    def describe(self) -> Dict[str, object]:
        """On-disk shape of the cache (for ``python -m repro cache stats``):
        directory, entry count, total payload bytes, shard count, and the
        configured eviction policy.  Robust to a missing or empty directory
        — every count reads as zero."""
        entries = 0
        total_bytes = 0
        shards = set()
        for path in self._iter_entries():
            entries += 1
            if path.parent != self.directory:
                shards.add(path.parent.name)
            try:
                total_bytes += path.stat().st_size
            except OSError:
                pass
        return {
            "directory": str(self.directory),
            "entries": entries,
            "total_bytes": total_bytes,
            "shards": len(shards),
            "policy": {
                "ttl_seconds": self.ttl_seconds,
                "max_entries": self.max_entries,
                "max_bytes": self.max_bytes,
            },
        }
