"""Parallel execution over a process pool: sweeps and request fan-out.

:class:`ParallelSweepRunner` is the multi-core counterpart of
:func:`repro.analysis.sweep.sweep`: it evaluates the same Cartesian grid,
produces the same :class:`~repro.analysis.sweep.SweepResult` (rows in grid
order, key-collision checking included), but fans the grid points out over a
``concurrent.futures.ProcessPoolExecutor``.  Its lower-level
:meth:`~ParallelSweepRunner.imap` / :meth:`~ParallelSweepRunner.map` primitives
fan out arbitrary picklable calls in submission order — they are what the
``process-pool`` execution backend of :mod:`repro.api` is built on.

Determinism is preserved under any worker count and any completion order:

* results come back in submission (grid) order, not completion order;
* when a master ``seed`` is configured, every grid point receives a seed
  derived (via the package-wide SHA-256 derivation) from the master seed and
  the point's own parameters — the seed of a point never depends on which
  worker ran it or on the grid shape.

Seeding is **declared, not introspected**: the runner injects the derived
seed under ``seed_parameter`` (default ``"seed"``) whenever a master seed is
set; pass ``seed_parameter=None`` for experiments that do not take one.  (The
old ``accepts_seed`` signature-introspection helper is gone — the experiment
registry's :class:`~repro.harness.registry.ExperimentSpec` now carries the
seed contract explicitly.)

The experiment callable and its parameter values must be picklable (a
top-level function, like every experiment in :mod:`repro.harness`); for
quick in-process runs or unpicklable closures, set ``max_workers=0`` to
evaluate serially through the exact same code path.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from functools import partial
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Sequence

from repro.analysis.sweep import SweepResult, grid_points, merge_point_row
from repro.local.randomness import derive_seed
from repro.obs import get_recorder

__all__ = ["ParallelSweepRunner", "point_seed"]


def _canonical_value(value: object) -> object:
    """Canonicalize a point value the way the cache-key layer does: numeric
    identity over representation (``1`` and ``1.0`` are the same parameter
    value — the schema normalizes them to one number) and sequence identity
    over container flavour (``RunRequest`` freezes lists to tuples and thaws
    them back, so ``(1, 2)`` and ``[1, 2]`` describe the same run).  Without
    this, equal points could derive *different* seeds depending on which
    spelling reached :func:`point_seed`."""
    # bool is an int subclass but a distinct parameter value (and a distinct
    # canonical JSON encoding), so it passes through untouched.
    if isinstance(value, float) and not isinstance(value, bool) and value.is_integer():
        return int(value)
    if isinstance(value, (list, tuple)):
        # Lists are the thawed (kwargs-side) spelling, so canonicalizing
        # tuples onto them keeps list-valued points' derived seeds stable
        # across this change.
        return [_canonical_value(item) for item in value]
    return value


def point_seed(master_seed: int, point: Mapping[str, object]) -> int:
    """The deterministic per-point seed: derived from the master seed and the
    point's sorted ``(name, canonical value)`` pairs, independent of worker
    scheduling, container flavour, and int/float spelling."""
    components = tuple(
        sorted((name, repr(_canonical_value(value))) for name, value in point.items())
    )
    return derive_seed(master_seed, "sweep-point", components) % (2**31)


def _evaluate_point(
    experiment: Callable[..., Mapping[str, object]], kwargs: Dict[str, object]
) -> Dict[str, object]:
    """Top-level worker body (must be picklable for the process pool)."""
    return dict(experiment(**kwargs))


class ParallelSweepRunner:
    """Evaluate parameter grids (and arbitrary call batches) over a pool.

    Parameters
    ----------
    max_workers:
        Pool size; ``None`` lets :class:`ProcessPoolExecutor` pick (one per
        CPU), ``0`` runs serially in-process (useful for unpicklable
        experiments and for debugging — the seeding and row assembly are
        identical either way).
    seed:
        Master seed for deterministic per-point seeding; ``None`` leaves the
        experiment's own ``seed`` default untouched.
    seed_parameter:
        The keyword the derived per-point seed is injected under; ``None``
        disables injection (for experiments without a seed parameter).
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        seed: Optional[int] = None,
        seed_parameter: Optional[str] = "seed",
    ) -> None:
        if max_workers is not None and max_workers < 0:
            raise ValueError("max_workers must be non-negative (0 = run serially)")
        self.max_workers = max_workers
        self.seed = seed
        self.seed_parameter = seed_parameter

    # ------------------------------------------------------------------ #
    def imap(
        self,
        function: Callable[[Dict[str, object]], object],
        payloads: Sequence[Dict[str, object]],
    ) -> Iterator[object]:
        """Apply ``function`` to every payload, yielding results in
        submission order.

        Over a pool, all payloads are submitted eagerly (before the first
        yield) and results stream back as the corresponding future resolves,
        so a slow first payload does not idle the other workers; with
        ``max_workers=0`` (or a single payload) the calls run serially
        in-process, lazily, through the same interface.
        """
        if self.max_workers == 0 or len(payloads) <= 1:
            for payload in payloads:
                yield function(payload)
            return

        recorder = get_recorder()
        pool = ProcessPoolExecutor(max_workers=self.max_workers)
        try:
            with recorder.span(
                "parallel.submit", tasks=len(payloads), max_workers=self.max_workers
            ):
                futures = [pool.submit(function, payload) for payload in payloads]
            for future in futures:
                yield future.result()
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

    def map(
        self,
        function: Callable[[Dict[str, object]], object],
        payloads: Sequence[Dict[str, object]],
    ) -> List[object]:
        """:meth:`imap`, fully materialized."""
        return list(self.imap(function, payloads))

    # ------------------------------------------------------------------ #
    def _point_kwargs(self, point: Mapping[str, object]) -> Dict[str, object]:
        kwargs = dict(point)
        if (
            self.seed is not None
            and self.seed_parameter is not None
            and self.seed_parameter not in kwargs
        ):
            kwargs[self.seed_parameter] = point_seed(self.seed, point)
        return kwargs

    def run(
        self,
        experiment: Callable[..., Mapping[str, object]],
        parameters: Mapping[str, Sequence[object]],
    ) -> SweepResult:
        """Run ``experiment(**point)`` for every grid point; rows come back
        in grid order regardless of which worker finished first."""
        points = grid_points(parameters)
        kwargs_per_point = [self._point_kwargs(point) for point in points]
        measurements = self.map(partial(_evaluate_point, experiment), kwargs_per_point)

        result = SweepResult()
        for point, measured in zip(points, measurements):
            result.rows.append(merge_point_row(point, measured))
        return result
