"""Parallel parameter sweeps over a process pool.

:class:`ParallelSweepRunner` is the multi-core counterpart of
:func:`repro.analysis.sweep.sweep`: it evaluates the same Cartesian grid,
produces the same :class:`~repro.analysis.sweep.SweepResult` (rows in grid
order, key-collision checking included), but fans the grid points out over a
``concurrent.futures.ProcessPoolExecutor``.

Determinism is preserved under any worker count and any completion order:

* rows are collected in grid order, not completion order;
* when a master ``seed`` is configured and the experiment accepts a ``seed``
  keyword, every point receives a seed derived (via the package-wide SHA-256
  derivation) from the master seed and the point's own parameters — the seed
  of a point never depends on which worker ran it or on the grid shape.

The experiment callable and its parameter values must be picklable (a
top-level function, like every experiment in :mod:`repro.harness`); for
quick in-process runs or unpicklable closures, set ``max_workers=0`` to
evaluate serially through the exact same code path.
"""

from __future__ import annotations

import inspect
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Dict, Mapping, Optional, Sequence

from repro.analysis.sweep import SweepResult, grid_points, merge_point_row
from repro.local.randomness import derive_seed

__all__ = ["ParallelSweepRunner", "accepts_seed", "point_seed"]


def point_seed(master_seed: int, point: Mapping[str, object]) -> int:
    """The deterministic per-point seed: derived from the master seed and the
    point's sorted ``(name, value)`` pairs, independent of worker scheduling."""
    components = tuple(sorted((name, repr(value)) for name, value in point.items()))
    return derive_seed(master_seed, "sweep-point", components) % (2**31)


def _evaluate_point(
    experiment: Callable[..., Mapping[str, object]], kwargs: Dict[str, object]
) -> Dict[str, object]:
    """Top-level worker body (must be picklable for the process pool)."""
    return dict(experiment(**kwargs))


def accepts_seed(experiment: Callable[..., object]) -> bool:
    """Whether a callable takes a ``seed`` keyword (directly or via
    ``**kwargs``); shared by the sweep runner and the CLI's seed plumbing."""
    try:
        signature = inspect.signature(experiment)
    except (TypeError, ValueError):  # pragma: no cover - builtins, C callables
        return False
    for parameter in signature.parameters.values():
        if parameter.kind is inspect.Parameter.VAR_KEYWORD:
            return True
        if parameter.name == "seed" and parameter.kind in (
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
            inspect.Parameter.KEYWORD_ONLY,
        ):
            return True
    return False


class ParallelSweepRunner:
    """Evaluate a parameter grid over a process pool.

    Parameters
    ----------
    max_workers:
        Pool size; ``None`` lets :class:`ProcessPoolExecutor` pick (one per
        CPU), ``0`` runs serially in-process (useful for unpicklable
        experiments and for debugging — the seeding and row assembly are
        identical either way).
    seed:
        Master seed for deterministic per-point seeding; ``None`` leaves the
        experiment's own ``seed`` default untouched.
    """

    def __init__(self, max_workers: Optional[int] = None, seed: Optional[int] = None) -> None:
        if max_workers is not None and max_workers < 0:
            raise ValueError("max_workers must be non-negative (0 = run serially)")
        self.max_workers = max_workers
        self.seed = seed

    # ------------------------------------------------------------------ #
    def _point_kwargs(
        self,
        experiment: Callable[..., Mapping[str, object]],
        point: Mapping[str, object],
    ) -> Dict[str, object]:
        kwargs = dict(point)
        if self.seed is not None and "seed" not in kwargs and accepts_seed(experiment):
            kwargs["seed"] = point_seed(self.seed, point)
        return kwargs

    def run(
        self,
        experiment: Callable[..., Mapping[str, object]],
        parameters: Mapping[str, Sequence[object]],
    ) -> SweepResult:
        """Run ``experiment(**point)`` for every grid point; rows come back
        in grid order regardless of which worker finished first."""
        points = grid_points(parameters)
        kwargs_per_point = [self._point_kwargs(experiment, point) for point in points]

        if self.max_workers == 0 or len(points) <= 1:
            measurements = [_evaluate_point(experiment, kwargs) for kwargs in kwargs_per_point]
        else:
            with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
                futures = [
                    pool.submit(_evaluate_point, experiment, kwargs)
                    for kwargs in kwargs_per_point
                ]
                measurements = [future.result() for future in futures]

        result = SweepResult()
        for point, measured in zip(points, measurements):
            result.rows.append(merge_point_row(point, measured))
        return result
