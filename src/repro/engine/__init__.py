"""repro.engine — batched vectorized Monte-Carlo execution.

The reference decision path (:mod:`repro.core.decision`) re-runs pure-Python
per-node voting once per trial, even though the configuration — and with it
every ball classification — is fixed across trials.  This subsystem compiles
a ``(Configuration, Decider)`` pair **once** into flat NumPy form (CSR
adjacency, per-node vote probabilities) and then evaluates thousands of
trials as single array operations.  It is the package's *fast path*; the
per-node Python rules remain the *reference path* that defines correctness.

Layers
------
* :mod:`repro.engine.compiler` — :func:`compile_decision` /
  :class:`CompiledDecision`: the one-off flattening, and the
  ``vote_probability`` contract a decider must expose to be compilable;
* :mod:`repro.engine.executor` — the trials×nodes Bernoulli-matrix
  evaluation, in ``fast`` (fully vectorized) and ``exact`` (bit-for-bit
  reproduction of the reference tape streams) modes;
* :mod:`repro.engine.adapters` — drop-in counterparts of the legacy entry
  points, used by the ``engine=`` dispatch in :mod:`repro.core.decision`
  and :mod:`repro.core.derandomization`;
* :mod:`repro.engine.parallel` — :class:`ParallelSweepRunner`, the
  process-pool counterpart of :func:`repro.analysis.sweep.sweep` with
  deterministic per-point seeding;
* :mod:`repro.engine.cache` — :class:`ResultCache`, the content-addressed
  JSON result store behind the CLI's default caching (key: experiment id +
  parameters + seed + package version; see the module docstring for the
  invalidation rule).

Fast path vs. reference path (guide for decider authors)
--------------------------------------------------------
A decider joins the fast path by exposing ``vote_probability(ball) ->
float``: the probability that ``vote(ball, tape)`` returns ``True`` on a
fresh tape.  The contract is that the vote is a *single Bernoulli decision*
— it either ignores the tape entirely (probability 0 or 1) or consumes
exactly the tape's first uniform draw via ``tape.bernoulli(p)`` /
``tape.uniform()``.  Deciders with richer coin usage (multiple draws,
draw-dependent control flow) must stay on the reference path; ``engine="auto"``
detects this and falls back automatically, while ``engine="fast"``/``"exact"``
raise rather than misreport.  An equivalence test in ``tests/engine``
asserts that both engine modes agree with the reference loop — exactly for
``exact`` mode, distributionally for ``fast`` mode.
"""

from repro.engine.adapters import (
    ENGINE_CHOICES,
    engine_acceptance_probability,
    engine_single_trial_votes,
    engine_success_counts,
    resolve_engine,
)
from repro.engine.cache import ResultCache, cache_key, default_cache_dir
from repro.engine.compiler import CompiledDecision, compile_decision, is_compilable
from repro.engine.executor import (
    accept_vector,
    acceptance_probability,
    exact_single_trial_votes,
    vote_matrix,
)
from repro.engine.parallel import ParallelSweepRunner, point_seed

__all__ = [
    "ENGINE_CHOICES",
    "CompiledDecision",
    "ParallelSweepRunner",
    "ResultCache",
    "accept_vector",
    "acceptance_probability",
    "cache_key",
    "compile_decision",
    "default_cache_dir",
    "engine_acceptance_probability",
    "engine_single_trial_votes",
    "engine_success_counts",
    "exact_single_trial_votes",
    "is_compilable",
    "point_seed",
    "resolve_engine",
    "vote_matrix",
]
