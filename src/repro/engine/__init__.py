"""repro.engine — batched vectorized Monte-Carlo execution.

The reference decision path (:mod:`repro.core.decision`) re-runs pure-Python
per-node voting once per trial, even though the configuration — and with it
every ball classification — is fixed across trials.  This subsystem compiles
a ``(Configuration, Decider)`` pair **once** into flat NumPy form (CSR
adjacency, per-node vote probabilities) and then evaluates thousands of
trials as single array operations.  It is the package's *fast path*; the
per-node Python rules remain the *reference path* that defines correctness.

Layers
------
* :mod:`repro.engine.compiler` — :func:`compile_decision` /
  :class:`CompiledDecision`: the one-off flattening, and the
  ``vote_probability`` contract a decider must expose to be compilable;
* :mod:`repro.engine.executor` — the trials×nodes Bernoulli-matrix
  evaluation, in ``fast`` (fully vectorized) and ``exact`` (bit-for-bit
  reproduction of the reference tape streams) modes;
* :mod:`repro.engine.adapters` — drop-in counterparts of the legacy entry
  points, used by the ``engine=`` dispatch in :mod:`repro.core.decision`
  and :mod:`repro.core.derandomization`;
* :mod:`repro.engine.construct` — the **construction engine**: compiles
  constructors (``output_program(ball)`` contract) into vectorized per-node
  draw programs producing the ``trials × nodes`` output matrix in one pass,
  lowers language membership to array form, and fuses radius-0 single-coin
  deciders on top, so the derandomization estimators (success probability,
  far acceptance, the Claim 3/Theorem 1 amplification runs) need no
  per-trial Python;
* :mod:`repro.engine.parallel` — :class:`ParallelSweepRunner`, the
  process-pool counterpart of :func:`repro.analysis.sweep.sweep` with
  deterministic per-point seeding;
* :mod:`repro.engine.cache` — :class:`ResultCache`, the content-addressed
  JSON result store behind the CLI's default caching (key: experiment id +
  parameters + seed + package version; see the module docstring for the
  invalidation rule).

Fast path vs. reference path (guide for decider authors)
--------------------------------------------------------
A decider joins the fast path by exposing a **vote program**:
``vote_program(ball) -> VoteExpr``, a Bernoulli circuit over the node's
private tape built from the :mod:`repro.engine.compiler` combinators
(``coin`` / ``const`` / ``all_of`` / ``any_of`` / ``neg`` / ``branch`` /
``majority``).  The contract is that interpreting the program against a
fresh tape (:func:`~repro.engine.compiler.evaluate_vote_expr`) behaves
exactly like ``vote(ball, tape)`` — same result, same draws consumed —
which is what keeps the exact mode bit-identical to the reference loop.
The legacy single-Bernoulli contract ``vote_probability(ball) -> float``
still compiles (it is the one-coin special case).  Deciders whose coin
usage exceeds the IR (more than
:data:`~repro.engine.compiler.MAX_PROGRAM_DRAWS` sequential draws) must
stay on the reference path; ``engine="auto"`` falls back automatically for
deciders exposing neither contract, while ``engine="fast"``/``"exact"``
raise rather than misreport.  An equivalence test in ``tests/engine``
asserts that both engine modes agree with the reference loop — exactly for
``exact`` mode, distributionally for ``fast`` mode.
"""

from repro.engine.adapters import (
    ENGINE_CHOICES,
    engine_acceptance_probability,
    engine_single_trial_votes,
    engine_success_counts,
    resolve_engine,
)
from repro.engine.cache import ResultCache, cache_key, default_cache_dir, request_cache_key
from repro.engine.compiler import (
    MAX_PROGRAM_DRAWS,
    CompiledDecision,
    ProgramCompilationError,
    VoteExpr,
    VoteProgram,
    all_of,
    any_of,
    branch,
    coin,
    compile_decision,
    const,
    evaluate_vote_expr,
    is_compilable,
    lower_program,
    majority,
    neg,
)
from repro.engine.construct import (
    MAX_OUTPUT_VALUES,
    CompiledConstruction,
    ConstructionCompilationError,
    OutputExpr,
    bernoulli_output,
    compile_construction,
    compile_fused_decision,
    compile_membership,
    const_output,
    construction_matrix,
    evaluate_output_expr,
    is_construction_compilable,
    resolve_construction_engine,
    uniform_choice,
    uniform_int,
)
from repro.engine.executor import (
    DEFAULT_MAX_BYTES,
    accept_vector,
    acceptance_probability,
    exact_single_trial_votes,
    vote_matrix,
)
from repro.engine.parallel import ParallelSweepRunner, point_seed

__all__ = [
    "DEFAULT_MAX_BYTES",
    "ENGINE_CHOICES",
    "MAX_OUTPUT_VALUES",
    "MAX_PROGRAM_DRAWS",
    "CompiledConstruction",
    "CompiledDecision",
    "ConstructionCompilationError",
    "OutputExpr",
    "ParallelSweepRunner",
    "ProgramCompilationError",
    "ResultCache",
    "VoteExpr",
    "VoteProgram",
    "accept_vector",
    "acceptance_probability",
    "all_of",
    "any_of",
    "bernoulli_output",
    "branch",
    "cache_key",
    "coin",
    "compile_construction",
    "compile_decision",
    "compile_fused_decision",
    "compile_membership",
    "const",
    "const_output",
    "construction_matrix",
    "default_cache_dir",
    "engine_acceptance_probability",
    "engine_single_trial_votes",
    "engine_success_counts",
    "evaluate_output_expr",
    "evaluate_vote_expr",
    "exact_single_trial_votes",
    "is_compilable",
    "is_construction_compilable",
    "lower_program",
    "majority",
    "neg",
    "point_seed",
    "request_cache_key",
    "resolve_construction_engine",
    "resolve_engine",
    "uniform_choice",
    "uniform_int",
    "vote_matrix",
]
