"""Whole-sweep fusion: share construction-engine work across a sweep's points.

Grid sweeps over decider parameters (E2's ε grid, E8's f grid) re-run the
same randomized construction once per point: every point compiles the same
``(constructor, network)`` pair and samples the same ``trials × nodes`` code
matrix before lowering its *own* membership / decision program against it.
This module factors that sharing out:

* :class:`FusionContext` — a per-group memo of construction matrices and
  base-language bad-count vectors, keyed by **content** (the compiled
  construction's programs/identities/alphabet plus seed, salt, and mode —
  exactly the inputs :func:`~repro.engine.construct.construction_matrix` is a
  deterministic function of), never by object identity.  Matrices grow via a
  retained :class:`~repro.engine.construct.ConstructionStream`, so a point
  needing more trials than a previous one extends the cached matrix and a
  point needing fewer is served a prefix — both bit-identical to a fresh
  one-shot matrix by the stream's chunk-invariance contract.  Retained bytes
  are bounded by the same ``max_bytes`` discipline as the chunked executor
  (LRU eviction; requests whose matrix alone would bust the bound bypass
  retention entirely and fall back to the per-point path).
* :func:`fusion_scope` / :func:`active_fusion` — the ambient context,
  carried in a :class:`contextvars.ContextVar` like the telemetry recorder:
  the batched estimators in :mod:`repro.engine.construct` consult
  :func:`active_fusion` and fall back to their stand-alone path when no
  context is installed, so nothing changes outside a fused sweep.
* :class:`FusedSweepPlan` — groups a sweep's requests by the coarse
  construction cache key ``(experiment, preset, engine, seed)``.  Grouping
  is a *sharing heuristic*, not a correctness boundary: the memo keys above
  enforce actual equality, so an over-broad group degrades to per-point work
  rather than to wrong answers.  Points whose experiment declares no engine
  selector, runs with ``engine="off"``, or derives a per-point seed land in
  singleton groups — the "fusion is inexpressible" fallback.

Exactness contract: a fused sweep is **bit-identical** to the per-point
path.  Every served matrix equals the one-shot ``construction_matrix`` call
it replaces (same compiled content, seed, salt, mode; prefix/extension
equality by chunk invariance), and every shared bad-count vector equals the
point's own ``MembershipProgram.bad_counts`` on that matrix (the counter is
a deterministic function of the base language, the network, and the codes —
the memo key carries all three, using the content-based ``Network``
equality).  Only work is shared, never randomness: points with different
seeds never share an entry.
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager
from contextvars import ContextVar
from typing import TYPE_CHECKING, Dict, Hashable, Iterator, List, Optional, Tuple

import numpy as np

from repro.engine.construct import (
    CompiledConstruction,
    ConstructionStream,
    compile_membership,
)
from repro.engine.executor import _resolve_max_bytes
from repro.obs import get_recorder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.languages import DistributedLanguage
    from repro.harness.registry import ExperimentSpec

__all__ = [
    "FusionContext",
    "FusedSweepPlan",
    "active_fusion",
    "fusion_scope",
    "fusion_group_key",
]


class _MatrixEntry:
    """One retained construction matrix plus its derived bad-count vectors.

    ``codes`` holds the trials sampled so far; ``stream`` resumes sampling
    exactly where the matrix ends, so growth preserves the prefix.  Count
    vectors are keyed by ``(base-language fingerprint, network)`` and grown
    in lockstep (counting only the freshly appended rows)."""

    __slots__ = ("stream", "codes", "counts")

    def __init__(self, stream: ConstructionStream) -> None:
        self.stream = stream
        self.codes: Optional[np.ndarray] = None
        self.counts: Dict[Hashable, np.ndarray] = {}

    @property
    def trials(self) -> int:
        return 0 if self.codes is None else int(self.codes.shape[0])

    @property
    def nbytes(self) -> int:
        total = 0 if self.codes is None else int(self.codes.nbytes)
        return total + sum(int(vector.nbytes) for vector in self.counts.values())


class FusionContext:
    """The per-group construction memo of a fused sweep.

    A context is confined to one fusion group's execution (one thread in the
    inline backend, one worker process in the pool backend) — it is never
    shared live across threads or processes, mirroring the recorder's
    discipline."""

    def __init__(self, max_bytes: Optional[int] = None) -> None:
        self.max_bytes = _resolve_max_bytes(max_bytes)
        self._entries: "OrderedDict[Hashable, _MatrixEntry]" = OrderedDict()  # loop-confined
        self._compiled_keys: Dict[int, Tuple[CompiledConstruction, Hashable]] = {}
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------ #
    @property
    def retained_bytes(self) -> int:
        return sum(entry.nbytes for entry in self._entries.values())

    def _hit(self) -> None:
        self.hits += 1
        get_recorder().counter("engine.fuse_hits")

    def _miss(self) -> None:
        self.misses += 1
        get_recorder().counter("engine.fuse_misses")

    # ------------------------------------------------------------------ #
    def _compiled_key(self, compiled: CompiledConstruction) -> Hashable:
        """The content key of a compiled construction — everything the code
        matrix and the code → value decoding depend on, nothing else (the
        adjacency only enters through the per-node programs and, for counts,
        through the network component of the count key)."""
        cached = self._compiled_keys.get(id(compiled))
        if cached is not None and cached[0] is compiled:
            return cached[1]
        key = (
            compiled.constructor_name,
            compiled.values,
            compiled.programs,
            compiled.program_ids.tobytes(),
            compiled.identities.tobytes(),
        )
        # Keep a strong reference so the id() above cannot be recycled.
        self._compiled_keys[id(compiled)] = (compiled, key)
        return key

    def _entry(
        self,
        compiled: CompiledConstruction,
        trials: int,
        seed_base: int,
        salt: object,
        mode: str,
    ) -> Optional[_MatrixEntry]:
        """The retained entry for one matrix request, or ``None`` when the
        request cannot (hashability) or should not (size) be retained."""
        if mode not in ("fast", "exact") or trials < 1:
            return None
        # A matrix that alone busts the byte bound is never retained: the
        # caller falls back to the one-shot path, whose transient working
        # set is chunk-bounded exactly like before fusion existed.
        if trials * max(compiled.n_nodes, 1) * 4 > self.max_bytes:
            return None
        try:
            key = (self._compiled_key(compiled), int(seed_base), salt, mode)
            hash(key)
        except TypeError:
            return None
        entry = self._entries.get(key)
        if entry is None:
            entry = self._entries[key] = _MatrixEntry(
                ConstructionStream(
                    compiled,
                    seed=int(seed_base),
                    mode=mode,
                    salt=salt,
                    max_bytes=self.max_bytes,
                )
            )
        self._entries.move_to_end(key)
        return entry

    def _grow(self, entry: _MatrixEntry, trials: int) -> np.ndarray:
        """The first ``trials`` rows of the entry's matrix, sampling the
        missing suffix (chunk-invariant, so prefixes and extensions are both
        bit-identical to a one-shot matrix)."""
        have = entry.trials
        if trials > have:
            fresh = entry.stream.sample(trials - have)
            entry.codes = fresh if entry.codes is None else np.concatenate([entry.codes, fresh])
            self._miss()
            self._evict()
        else:
            self._hit()
        assert entry.codes is not None
        return entry.codes[:trials]

    def _evict(self) -> None:
        """Drop least-recently-used entries until the retained bytes fit."""
        while len(self._entries) > 1 and self.retained_bytes > self.max_bytes:
            self._entries.popitem(last=False)

    # ------------------------------------------------------------------ #
    def codes_for(
        self,
        compiled: CompiledConstruction,
        trials: int,
        seed_base: int,
        salt: object,
        mode: str,
    ) -> Optional[np.ndarray]:
        """The shared ``trials × nodes`` code matrix, or ``None`` when this
        request bypasses fusion (caller falls back to the one-shot path).

        Bit-identical to ``construction_matrix(compiled, trials,
        seed=seed_base, mode=mode, trial_seed=lambda t: seed_base + t,
        salt=salt)`` — the seeding convention every batched estimator uses.
        The returned array is a read-only view of the retained matrix."""
        entry = self._entry(compiled, trials, seed_base, salt, mode)
        if entry is None:
            return None
        codes = self._grow(entry, trials)
        codes.flags.writeable = False
        return codes

    def _count_key(
        self, language: "DistributedLanguage", compiled: CompiledConstruction
    ) -> Optional[Hashable]:
        """The sharing key of a base language's bad counts, or ``None`` for
        languages without a safe structural fingerprint (those still share
        the matrix; only the counts stay per-point)."""
        from repro.core.lcl import ProperColoring
        from repro.core.relaxations import EpsSlackLanguage, FResilientLanguage

        base = language
        if isinstance(language, (FResilientLanguage, EpsSlackLanguage)):
            base = language.base
        if type(base) is ProperColoring:
            # Content-based Network equality/hash makes the object itself a
            # sound key component across per-point network rebuilds.
            return (("proper-coloring", base.num_colors), compiled.network)
        return None

    def bad_counts_for(
        self,
        compiled: CompiledConstruction,
        language: "DistributedLanguage",
        trials: int,
        seed_base: int,
        salt: object,
        mode: str,
    ) -> Optional[np.ndarray]:
        """Per-trial bad-ball counts of ``language``'s base over the shared
        matrix, or ``None`` when fusion/lowering is unavailable.

        Equal to ``compile_membership(language, compiled).bad_counts(codes)``
        on the matching one-shot matrix: the counter is a deterministic
        function of (base, network, codes), all of which the memo key pins."""
        entry = self._entry(compiled, trials, seed_base, salt, mode)
        if entry is None:
            return None
        membership = compile_membership(language, compiled)
        if membership is None:
            return None
        codes = self._grow(entry, trials)
        key = self._count_key(language, compiled)
        if key is None:
            return membership.bad_counts(codes)
        vector = entry.counts.get(key)
        have = 0 if vector is None else len(vector)
        if trials > have:
            fresh = membership.bad_counts(codes[have:trials])
            vector = fresh if vector is None else np.concatenate([vector, fresh])
            entry.counts[key] = vector
            self._miss()
        else:
            self._hit()
        assert vector is not None
        return vector[:trials]

    def member_vector_for(
        self,
        compiled: CompiledConstruction,
        language: "DistributedLanguage",
        trials: int,
        seed_base: int,
        salt: object,
        mode: str,
    ) -> Optional[np.ndarray]:
        """Per-trial membership over the shared matrix, or ``None`` when the
        matrix itself bypasses fusion.  Languages the engine cannot lower
        still share the matrix and run the decoded per-row fallback on it —
        bit-identical either way (membership is a deterministic function of
        the outputs)."""
        entry = self._entry(compiled, trials, seed_base, salt, mode)
        if entry is None:
            return None
        membership = compile_membership(language, compiled)
        if membership is None:
            from repro.engine.construct import _member_vector

            return _member_vector(language, compiled, self._grow(entry, trials))
        counts = self.bad_counts_for(compiled, language, trials, seed_base, salt, mode)
        assert counts is not None  # the entry above exists and lowering succeeded
        return counts <= membership.budget


# --------------------------------------------------------------------------- #
# The ambient context
# --------------------------------------------------------------------------- #
_ACTIVE: ContextVar[Optional[FusionContext]] = ContextVar("repro-engine-fusion", default=None)


def active_fusion() -> Optional[FusionContext]:
    """The ambient fusion context, or ``None`` outside a fused group."""
    return _ACTIVE.get()


@contextmanager
def fusion_scope(
    context: Optional[FusionContext] = None, **attributes: object
) -> Iterator[FusionContext]:
    """Install a fusion context for one group's execution.

    Emits the ``engine.fuse_group`` span around the block and annotates it
    with the context's hit/miss/byte tallies on the way out."""
    if context is None:
        context = FusionContext()
    recorder = get_recorder()
    token = _ACTIVE.set(context)
    try:
        with recorder.span("engine.fuse_group", **attributes) as span:
            yield context
            span.annotate(
                fuse_hits=context.hits,
                fuse_misses=context.misses,
                retained_bytes=context.retained_bytes,
            )
    finally:
        _ACTIVE.reset(token)


# --------------------------------------------------------------------------- #
# Sweep planning
# --------------------------------------------------------------------------- #
def fusion_group_key(spec: "ExperimentSpec", kwargs: Dict[str, object]) -> Optional[Hashable]:
    """The coarse sharing key of one resolved request, or ``None`` when
    fusion is inexpressible for it (no engine selector in the schema, or the
    engine explicitly off — the construction then runs through the reference
    per-trial path, which fusion never touches)."""
    if not spec.accepts_engine:
        return None
    engine = kwargs.get("engine")
    if engine in (None, "off"):
        return None
    seed = kwargs.get("seed") if spec.accepts_seed else None
    try:
        hash(seed)
    except TypeError:
        return None
    return (spec.id, engine, seed)


class FusedSweepPlan:
    """The grouping of one sweep's requests into fusion groups.

    ``groups`` holds request indices, in first-occurrence order, grouped by
    :func:`fusion_group_key`; unfusible requests get singleton groups.  The
    backends shard across groups and fuse within them."""

    def __init__(self, group_ids: Tuple[int, ...], groups: Tuple[Tuple[int, ...], ...]) -> None:
        self.group_ids = group_ids
        self.groups = groups

    @classmethod
    def build(cls, spec: "ExperimentSpec", requests) -> "FusedSweepPlan":
        """Group ``requests`` (``RunRequest`` objects for ``spec``) by their
        fusion key; the preset is constant across one sweep, so it does not
        enter the key."""
        key_to_group: Dict[Hashable, int] = {}
        groups: List[List[int]] = []
        group_ids: List[int] = []
        for index, request in enumerate(requests):
            key = fusion_group_key(spec, request.kwargs)
            if key is None:
                group = len(groups)
                groups.append([index])
            else:
                group = key_to_group.get(key, -1)
                if group < 0:
                    group = key_to_group[key] = len(groups)
                    groups.append([index])
                else:
                    groups[group].append(index)
            group_ids.append(group)
        return cls(tuple(group_ids), tuple(tuple(members) for members in groups))

    def group_of(self, index: int) -> int:
        return self.group_ids[index]

    @property
    def fused_points(self) -> int:
        """Points that actually share a group with at least one other."""
        return sum(len(members) for members in self.groups if len(members) > 1)

    @property
    def has_fusion(self) -> bool:
        return any(len(members) > 1 for members in self.groups)
