"""Drop-in engine counterparts of the legacy decision entry points.

These helpers are what :mod:`repro.core.decision` and
:mod:`repro.core.derandomization` dispatch to when a decider is compilable
(see :func:`repro.engine.compiler.is_compilable`).  Each mirrors the exact
seeding convention of the reference function it replaces, so callers choose
between

* ``engine="auto"`` — compile and run in **exact** mode: bit-for-bit the
  same accept/reject stream as the reference loop, minus the per-trial
  Python voting (the default everywhere: safe and already much faster on
  configurations whose balls are mostly deterministic);
* ``engine="fast"`` — compile and run the fully vectorized chunked sampler:
  distributionally equivalent, maximum throughput;
* ``engine="off"`` — never used here; callers fall back to the reference
  loop themselves.

Both multi-draw vote programs (``vote_program(ball)``) and the legacy
single-Bernoulli contract (``vote_probability(ball)``) compile; see
:mod:`repro.engine.compiler`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Hashable

import numpy as np

from repro.engine.compiler import compile_decision, is_compilable
from repro.engine.executor import (
    AcceptStream,
    accept_vector,
    acceptance_probability,
    adaptive_acceptance,
    deterministic_accept_value,
    exact_single_trial_votes,
)
from repro.stats import PrecisionTarget, ProbabilityEstimate, sequential_estimate

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.decision import Decider
    from repro.core.languages import Configuration

__all__ = [
    "ENGINE_CHOICES",
    "resolve_engine",
    "engine_acceptance_probability",
    "engine_adaptive_acceptance",
    "engine_success_counts",
    "engine_adaptive_success",
    "engine_single_trial_votes",
]

#: Accepted values of the ``engine=`` parameter threaded through the stack.
ENGINE_CHOICES = ("auto", "fast", "exact", "off")


def resolve_engine(engine: str, decider: object) -> str:
    """Map an ``engine=`` parameter value to an execution path.

    Returns ``"off"`` (reference path), ``"exact"`` or ``"fast"``.  ``auto``
    selects exact mode when the decider is compilable, otherwise the
    reference path; explicitly requesting ``fast``/``exact`` on a
    non-compilable decider raises, because silently falling back would
    misreport what was measured.
    """
    if engine not in ENGINE_CHOICES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINE_CHOICES}")
    if engine == "off":
        return "off"
    compilable = is_compilable(decider)
    if engine == "auto":
        return "exact" if compilable else "off"
    if not compilable:
        raise TypeError(
            f"engine={engine!r} requested but decider "
            f"{getattr(decider, 'name', decider)!r} is not compilable"
        )
    return engine


def engine_acceptance_probability(
    decider: "Decider",
    configuration: "Configuration",
    trials: int,
    seed: int,
    mode: str,
) -> float:
    """Engine counterpart of :meth:`Decider.acceptance_probability`.

    Exact mode replays the reference seeding ``TapeFactory(seed + trial,
    salt=decider.name)`` and therefore returns the identical estimate.
    """
    compiled = compile_decision(decider, configuration)
    return acceptance_probability(
        compiled,
        trials,
        seed=seed,
        mode=mode,
        trial_seed=lambda trial: seed + trial,
        salt=decider.name,
    )


def engine_adaptive_acceptance(
    decider: "Decider",
    configuration: "Configuration",
    target: PrecisionTarget,
    seed: int,
    mode: str,
) -> ProbabilityEstimate:
    """Adaptive counterpart of :func:`engine_acceptance_probability`.

    Same seeding convention (``TapeFactory(seed + trial, salt=decider.name)``
    in exact mode), but trials stream in chunks until ``target`` is met —
    stopping after ``k`` trials reports exactly the fixed ``k``-trial
    estimate, because the streams are chunk-invariant.
    """
    compiled = compile_decision(decider, configuration)
    return adaptive_acceptance(
        compiled,
        target,
        seed=seed,
        mode=mode,
        trial_seed=lambda trial: seed + trial,
        salt=decider.name,
    )


def engine_adaptive_success(
    decider: "Decider",
    configuration: "Configuration",
    member: bool,
    target: PrecisionTarget,
    seed: int,
    index: int,
    mode: str,
) -> ProbabilityEstimate:
    """Adaptive counterpart of :func:`engine_success_counts` (success =
    accepted on members, rejected on non-members), on the same reference
    seeding ``TapeFactory(seed * 1_000_003 + trial, salt=f"{name}/{index}")``.
    """
    compiled = compile_decision(decider, configuration)
    constant = deterministic_accept_value(compiled)
    if constant is not None:
        return ProbabilityEstimate.exact(
            constant if member else not constant, confidence=target.confidence
        )
    stream = AcceptStream(
        compiled,
        seed=seed * 1_000_003,
        mode=mode,
        trial_seed=lambda trial: seed * 1_000_003 + trial,
        salt=f"{decider.name}/{index}",
    )

    def draw(count: int) -> int:
        accepted = int(np.count_nonzero(stream.sample(count)))
        return accepted if member else count - accepted

    return sequential_estimate(target, draw)


def engine_success_counts(
    decider: "Decider",
    configuration: "Configuration",
    member: bool,
    trials: int,
    seed: int,
    index: int,
    mode: str,
) -> int:
    """Engine counterpart of one configuration's inner loop in
    :func:`repro.core.decision.estimate_guarantee`.

    Success means "accepted" on members and "rejected" on non-members; exact
    mode replays the reference seeding ``TapeFactory(seed * 1_000_003 +
    trial, salt=f"{decider.name}/{index}")``.
    """
    compiled = compile_decision(decider, configuration)
    accepted = accept_vector(
        compiled,
        trials,
        seed=seed * 1_000_003,
        mode=mode,
        trial_seed=lambda trial: seed * 1_000_003 + trial,
        salt=f"{decider.name}/{index}",
    )
    successes = accepted if member else ~accepted
    return int(np.count_nonzero(successes))


def engine_single_trial_votes(
    decider: "Decider",
    configuration: "Configuration",
    master_seed: int,
    salt: object,
) -> Dict[Hashable, bool]:
    """One decide() execution evaluated through the engine.

    Bit-for-bit identical to ``decider.decide(configuration,
    tape_factory=TapeFactory(master_seed, salt)).votes`` for compilable
    deciders; used by the derandomization loops, whose configurations change
    every trial (fresh constructor coins) but whose decision step still
    benefits from skipping tape construction at deterministic nodes.
    """
    compiled = compile_decision(decider, configuration)
    votes = exact_single_trial_votes(compiled, master_seed, salt)
    return {node: bool(votes[position]) for position, node in enumerate(compiled.nodes)}
