"""Compilation of ``(Configuration, Decider)`` pairs into flat numeric form.

The legacy decision path re-extracts balls and re-runs per-node Python voting
rules once per Monte-Carlo trial, even though the configuration — and hence
every ball classification — is fixed across trials.  The compiler factors
that invariant work out: it walks the configuration **once**, asks the
decider for each node's **vote program** (see below), and stores the result
as plain NumPy arrays:

* a CSR adjacency (``indptr``/``indices`` over the identity-sorted node
  order) describing the graph,
* one lowered :class:`VoteProgram` per distinct per-node program, plus the
  per-node assignment ``program_ids`` and the per-node acceptance
  probabilities ``probabilities[i] ∈ [0, 1]``,
* the node identities, which seed the per-node random streams in the
  executor's exact mode.

Vote programs — the Bernoulli-circuit IR
----------------------------------------
A decider joins the engine by describing each node's vote as a small
*Bernoulli circuit* over the node's private tape: a sequence of
``bernoulli(p)`` draws combined with and/or/not and draw-indexed branching.
The IR is the expression layer

* :func:`const` — a vote that ignores the tape,
* :func:`coin` — ``tape.bernoulli(p)``, consuming exactly one draw,
* :func:`all_of` / :func:`any_of` / :func:`neg` — short-circuit ``and`` /
  ``or`` / ``not`` (later operands consume draws only on the paths that
  reach them, exactly like the Python rule they mirror),
* :func:`branch` — draw-indexed branching: evaluate a condition circuit,
  then continue with one of two sub-circuits,
* :func:`majority` — the amplification workhorse: the majority vote of
  ``count`` i.i.d. coins, consuming **all** ``count`` draws on every path
  (mirroring an eager Python tally loop).

The contract is that interpreting the program against a fresh tape
(:func:`evaluate_vote_expr`) is *observationally identical* to the decider's
``vote(ball, tape)``: same result, same number of tape draws consumed along
the way.  :func:`lower_program` compiles the expression into a flat decision
DAG whose internal nodes each consume one draw — the draw consumed by a
program node is exactly its depth, which is what lets the executor's exact
mode replay the reference tape streams bit for bit.  Programs are capped at
:data:`MAX_PROGRAM_DRAWS` sequential draws (and :data:`MAX_PROGRAM_NODES`
lowered nodes); richer deciders must stay on the reference path.

Deciders expose the IR through ``vote_program(ball) -> VoteExpr``.  The
legacy single-Bernoulli contract ``vote_probability(ball) -> float`` is
still honoured (it compiles to :func:`coin` / :func:`const`); see
:func:`is_compilable`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from functools import cached_property
from typing import TYPE_CHECKING, Callable, Dict, Hashable, List, Optional, Tuple

import numpy as np

from repro.errors import ReproError
from repro.obs import get_recorder

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.decision import Decider
    from repro.core.languages import Configuration
    from repro.local.network import Network

__all__ = [
    "ACCEPT",
    "REJECT",
    "MAX_PROGRAM_DRAWS",
    "MAX_PROGRAM_NODES",
    "VoteExpr",
    "Const",
    "Coin",
    "Not",
    "AllOf",
    "AnyOf",
    "Branch",
    "const",
    "coin",
    "neg",
    "all_of",
    "any_of",
    "branch",
    "majority",
    "evaluate_vote_expr",
    "ProgramCompilationError",
    "VoteProgram",
    "lower_program",
    "CompiledDecision",
    "compile_decision",
    "is_compilable",
]


# --------------------------------------------------------------------------- #
# The expression layer of the IR
# --------------------------------------------------------------------------- #
class VoteExpr:
    """Base class of vote-program expressions (immutable, structural
    equality; see the module docstring for the combinators)."""

    __slots__ = ()


@dataclass(frozen=True)
class Const(VoteExpr):
    """A vote that ignores the tape entirely."""

    value: bool


@dataclass(frozen=True)
class Coin(VoteExpr):
    """``tape.bernoulli(p)`` — consumes exactly one uniform draw."""

    p: float


@dataclass(frozen=True)
class Not(VoteExpr):
    """Logical negation (consumes whatever the operand consumes)."""

    operand: VoteExpr


@dataclass(frozen=True)
class AllOf(VoteExpr):
    """Short-circuit conjunction: operands evaluated left to right, and a
    ``False`` operand stops the evaluation (later draws are not consumed)."""

    operands: Tuple[VoteExpr, ...]


@dataclass(frozen=True)
class AnyOf(VoteExpr):
    """Short-circuit disjunction (dual of :class:`AllOf`)."""

    operands: Tuple[VoteExpr, ...]


@dataclass(frozen=True)
class Branch(VoteExpr):
    """Draw-indexed branching: evaluate ``condition`` (consuming its draws),
    then continue with ``on_true`` or ``on_false``."""

    condition: VoteExpr
    on_true: VoteExpr
    on_false: VoteExpr


def const(value: bool) -> Const:
    return Const(bool(value))


def coin(p: float) -> VoteExpr:
    """A single Bernoulli draw; degenerate probabilities fold to constants
    (matching voting rules that return early without touching the tape)."""
    p = float(p)
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"coin probability must lie in [0, 1]; got {p}")
    if p <= 0.0:
        return Const(False)
    if p >= 1.0:
        return Const(True)
    return Coin(p)


def neg(operand: VoteExpr) -> VoteExpr:
    return Not(operand)


def all_of(*operands: VoteExpr) -> VoteExpr:
    if len(operands) == 1:
        return operands[0]
    return AllOf(tuple(operands))


def any_of(*operands: VoteExpr) -> VoteExpr:
    if len(operands) == 1:
        return operands[0]
    return AnyOf(tuple(operands))


def branch(condition: VoteExpr, on_true: VoteExpr, on_false: VoteExpr) -> VoteExpr:
    return Branch(condition, on_true, on_false)


def majority(count: int, p: float, threshold: Optional[int] = None) -> VoteExpr:
    """The majority vote of ``count`` i.i.d. ``bernoulli(p)`` coins.

    Mirrors the eager Python tally loop ``sum(tape.bernoulli(p) for _ in
    range(count)) >= threshold``: **all** ``count`` draws are consumed on
    every path, even once the outcome is already decided — which is what
    keeps the exact mode bit-identical to that reference rule.  The default
    threshold is a strict majority, ``count // 2 + 1``.
    """
    count = int(count)
    if count < 1:
        raise ValueError("a majority vote needs at least one coin")
    if threshold is None:
        threshold = count // 2 + 1
    threshold = int(threshold)
    cache: Dict[Tuple[int, int], VoteExpr] = {}

    def build(remaining: int, successes: int) -> VoteExpr:
        key = (remaining, successes)
        if key not in cache:
            if remaining == 0:
                cache[key] = Const(successes >= threshold)
            else:
                cache[key] = Branch(
                    coin(p), build(remaining - 1, successes + 1), build(remaining - 1, successes)
                )
        return cache[key]

    return build(count, 0)


def evaluate_vote_expr(expr: VoteExpr, tape) -> bool:
    """Interpret a vote program against a node's private tape.

    This is the *reference semantics* of the IR: the engine's compiled
    evaluation is defined to agree with this interpreter bit for bit
    (``tape`` is any object exposing ``bernoulli(p)``, e.g.
    :class:`repro.local.randomness.RandomTape`).  Constant programs never
    touch the tape, so they also work with ``tape=None``.
    """
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Coin):
        if tape is None:
            raise ValueError("a vote program with coins needs a random tape")
        return bool(tape.bernoulli(expr.p))
    if isinstance(expr, Not):
        return not evaluate_vote_expr(expr.operand, tape)
    if isinstance(expr, AllOf):
        return all(evaluate_vote_expr(operand, tape) for operand in expr.operands)
    if isinstance(expr, AnyOf):
        return any(evaluate_vote_expr(operand, tape) for operand in expr.operands)
    if isinstance(expr, Branch):
        if evaluate_vote_expr(expr.condition, tape):
            return evaluate_vote_expr(expr.on_true, tape)
        return evaluate_vote_expr(expr.on_false, tape)
    raise TypeError(f"not a vote expression: {expr!r}")


# --------------------------------------------------------------------------- #
# Lowering: expression -> flat decision program
# --------------------------------------------------------------------------- #
#: Terminal states of a lowered program.
ACCEPT = -1
REJECT = -2

#: Hard cap on sequential draws along any path of one program.  A decider
#: whose per-node rule consumes more randomness than this cannot be expressed
#: in the IR and must run on the reference path (``engine="off"``).
MAX_PROGRAM_DRAWS = 64

#: Hard cap on lowered program nodes (guards against pathological circuits).
MAX_PROGRAM_NODES = 4096


class ProgramCompilationError(ReproError, ValueError):
    """A vote program exceeds what the engine IR can express (too many
    sequential draws or too many lowered nodes).

    Part of the :mod:`repro.errors` taxonomy (HTTP 422: the request was
    well-formed but names a program the engine cannot run)."""

    code = "program_compilation"
    http_status = 422


@dataclass(frozen=True)
class VoteProgram:
    """One distinct per-node vote program, lowered to a flat decision DAG.

    Each program node consumes one uniform draw: with ``u`` the draw at
    index ``depths[j]`` of the node's tape, control moves to ``on_true[j]``
    when ``u < thresholds[j]`` and to ``on_false[j]`` otherwise, until a
    terminal (:data:`ACCEPT` / :data:`REJECT`) is reached.  Program nodes
    are indexed so that every edge goes from a higher index to a lower one;
    ``root`` is therefore the highest index (or a terminal, for constant
    programs).

    ``constant`` is the structurally-determined vote (``None`` when the vote
    genuinely depends on the draws) and ``accept_probability`` the exact
    closed-form probability of voting ``True``.
    """

    thresholds: np.ndarray = field(repr=False)
    on_true: np.ndarray = field(repr=False)
    on_false: np.ndarray = field(repr=False)
    depths: np.ndarray = field(repr=False)
    root: int
    accept_probability: float
    constant: Optional[bool]
    max_draws: int

    @property
    def n_nodes(self) -> int:
        return len(self.thresholds)

    def walk(self, next_uniform: Callable[[], float]) -> bool:
        """Evaluate the program by drawing uniforms sequentially.

        ``next_uniform`` must yield the node's tape stream in order; program
        node at depth ``d`` then consumes draw ``d``, exactly like the
        interpreted expression.
        """
        state = self.root
        while state >= 0:
            if next_uniform() < self.thresholds[state]:
                state = int(self.on_true[state])
            else:
                state = int(self.on_false[state])
        return state == ACCEPT


def lower_program(expr: VoteExpr) -> VoteProgram:
    """Lower a vote expression to a :class:`VoteProgram`.

    The lowering is continuation-based: each sub-expression is compiled at
    an explicit draw depth with two continuations (where to go on ``True`` /
    ``False``), which realises short-circuit ``and``/``or`` and branching
    while keeping the invariant that a program node at depth ``d`` consumes
    exactly draw ``d`` of the tape.  Raises
    :class:`ProgramCompilationError` when the expression needs more than
    :data:`MAX_PROGRAM_DRAWS` sequential draws or more than
    :data:`MAX_PROGRAM_NODES` lowered nodes.
    """
    rows: List[Tuple[float, int, int, int]] = []
    # Shared sub-circuits (e.g. the (remaining, successes) states of
    # ``majority``) must lower once per (expression, depth, continuations)
    # triple, not once per path — without this memo a k-coin majority
    # explodes to 2^k − 1 nodes instead of O(k²).  Expressions are keyed by
    # identity (the dataclass structural hash would itself re-expand a
    # shared DAG exponentially); the whole expression stays alive for the
    # duration of the call, and continuation functions hash by identity too.
    lowered_memo: Dict[Tuple[int, int, object, object], int] = {}

    def draw_cap_error() -> ProgramCompilationError:
        return ProgramCompilationError(
            f"vote program needs more than {MAX_PROGRAM_DRAWS} sequential "
            "draws, which the engine IR cannot express; run this decider "
            'with engine="off"'
        )

    def emit(p: float, depth: int, on_true: int, on_false: int) -> int:
        if depth >= MAX_PROGRAM_DRAWS:
            raise draw_cap_error()
        if len(rows) >= MAX_PROGRAM_NODES:
            raise ProgramCompilationError(
                f"vote program lowers to more than {MAX_PROGRAM_NODES} nodes, "
                'which the engine IR cannot express; run this decider with engine="off"'
            )
        rows.append((p, on_true, on_false, depth))
        return len(rows) - 1

    def memoized(fn: Callable[[int], int]) -> Callable[[int], int]:
        cache: Dict[int, int] = {}

        def wrapped(depth: int) -> int:
            if depth not in cache:
                cache[depth] = fn(depth)
            return cache[depth]

        return wrapped

    def lower(expr: VoteExpr, depth: int, k_true, k_false) -> int:
        key = (id(expr), depth, k_true, k_false)
        if key in lowered_memo:
            return lowered_memo[key]
        result = _lower(expr, depth, k_true, k_false)
        lowered_memo[key] = result
        return result

    def _lower(expr: VoteExpr, depth: int, k_true, k_false) -> int:
        if isinstance(expr, Const):
            return k_true(depth) if expr.value else k_false(depth)
        if isinstance(expr, Coin):
            p = float(expr.p)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"coin probability must lie in [0, 1]; got {p}")
            # Enforce the draw cap *before* recursing into the continuations:
            # they descend through every later draw, so a late check would hit
            # the interpreter's recursion limit first on long coin chains.
            if depth >= MAX_PROGRAM_DRAWS:
                raise draw_cap_error()
            return emit(p, depth, k_true(depth + 1), k_false(depth + 1))
        if isinstance(expr, Not):
            return lower(expr.operand, depth, k_false, k_true)
        if isinstance(expr, (AllOf, AnyOf)):
            conjunction = isinstance(expr, AllOf)
            operands = expr.operands
            if len(operands) > MAX_PROGRAM_NODES:
                raise ProgramCompilationError(
                    f"vote program combines more than {MAX_PROGRAM_NODES} "
                    "operands, which the engine IR cannot express; run this "
                    'decider with engine="off"'
                )

            def lower_from(index: int, depth: int) -> int:
                if index == len(operands):
                    return k_true(depth) if conjunction else k_false(depth)
                continue_k = memoized(lambda d: lower_from(index + 1, d))
                if conjunction:
                    return lower(operands[index], depth, continue_k, k_false)
                return lower(operands[index], depth, k_true, continue_k)

            return lower_from(0, depth)
        if isinstance(expr, Branch):
            true_k = memoized(lambda d: lower(expr.on_true, d, k_true, k_false))
            false_k = memoized(lambda d: lower(expr.on_false, d, k_true, k_false))
            return lower(expr.condition, depth, true_k, false_k)
        raise TypeError(f"not a vote expression: {expr!r}")

    root = lower(expr, 0, lambda _depth: ACCEPT, lambda _depth: REJECT)

    thresholds = np.array([row[0] for row in rows], dtype=np.float64)
    on_true = np.array([row[1] for row in rows], dtype=np.int32)
    on_false = np.array([row[2] for row in rows], dtype=np.int32)
    depths = np.array([row[3] for row in rows], dtype=np.int32)

    constant = _structural_constant(root, thresholds, on_true, on_false)
    probability = _accept_probability(root, thresholds, on_true, on_false)
    if constant is True:
        probability = 1.0
    elif constant is False:
        probability = 0.0
    max_draws = int(depths.max()) + 1 if len(rows) else 0
    return VoteProgram(
        thresholds=thresholds,
        on_true=on_true,
        on_false=on_false,
        depths=depths,
        root=int(root),
        accept_probability=float(probability),
        constant=constant,
        max_draws=max_draws,
    )


def _structural_constant(root, thresholds, on_true, on_false) -> Optional[bool]:
    """The program's vote when it cannot depend on the draws, else ``None``.

    Walks the reachable part of the DAG; a threshold-0 edge can never fire
    (uniforms live in ``[0, 1)``) and a threshold-1 edge always does, so the
    corresponding branches are pruned.  Constancy is decided structurally —
    never from the floating-point acceptance probability, whose rounding
    could misclassify a genuinely random vote as deterministic.
    """
    if root < 0:
        return root == ACCEPT
    seen = set()
    stack = [int(root)]
    outcomes = set()
    while stack:
        state = stack.pop()
        if state < 0:
            outcomes.add(state == ACCEPT)
            if len(outcomes) == 2:
                return None
            continue
        if state in seen:
            continue
        seen.add(state)
        if thresholds[state] > 0.0:
            stack.append(int(on_true[state]))
        if thresholds[state] < 1.0:
            stack.append(int(on_false[state]))
    return outcomes.pop() if len(outcomes) == 1 else None


def _accept_probability(root, thresholds, on_true, on_false) -> float:
    """Exact Pr[program votes True]: each node's draw is fresh, so the DAG
    recursion ``P(j) = p_j·P(true_j) + (1 − p_j)·P(false_j)`` is exact."""
    cache: Dict[int, float] = {ACCEPT: 1.0, REJECT: 0.0}

    def probability(state: int) -> float:
        if state not in cache:
            p = float(thresholds[state])
            cache[state] = p * probability(int(on_true[state])) + (1.0 - p) * probability(
                int(on_false[state])
            )
        return cache[state]

    return probability(int(root))


# --------------------------------------------------------------------------- #
# Compiled decisions
# --------------------------------------------------------------------------- #
def is_compilable(decider: object) -> bool:
    """Whether the decider exposes a vote program the engine can compile:
    either the circuit contract ``vote_program(ball)`` or the legacy
    single-Bernoulli contract ``vote_probability(ball)``."""
    return callable(getattr(decider, "vote_program", None)) or callable(
        getattr(decider, "vote_probability", None)
    )


@dataclass(frozen=True)
class CompiledDecision:
    """A ``(Configuration, Decider)`` pair flattened to NumPy arrays.

    Node order is the network's stable node order; all arrays are indexed by
    position in ``nodes``.

    Attributes
    ----------
    nodes:
        The node objects, fixing the array indexing.
    identities:
        ``int64`` identity of each node (seeds the exact-mode streams).
    probabilities:
        ``float64`` probability that the node votes ``True`` (the exact
        closed form of the node's program).
    programs / program_ids:
        The distinct lowered :class:`VoteProgram` objects and the per-node
        assignment into them.
    indptr / indices:
        CSR adjacency over the same node order (neighbours sorted by
        identity, as everywhere else in the package).  Built lazily on
        first access: trial execution never reads the adjacency, and the
        derandomization loops compile once per trial, so eager CSR
        construction would be dead weight on their hot path.
    decider_name:
        Name of the compiled decider (the legacy tape salt).
    radius:
        Checking radius of the decider (cost bookkeeping / reporting).
    """

    nodes: Tuple[Hashable, ...]
    identities: np.ndarray
    probabilities: np.ndarray
    programs: Tuple[VoteProgram, ...]
    program_ids: np.ndarray
    network: "Network" = field(repr=False)
    decider_name: str
    radius: int

    # ------------------------------------------------------------------ #
    @cached_property
    def _csr(self) -> Tuple[np.ndarray, np.ndarray]:
        position_of = {node: position for position, node in enumerate(self.nodes)}
        indptr = np.zeros(len(self.nodes) + 1, dtype=np.int64)
        flat_indices: List[int] = []
        for position, node in enumerate(self.nodes):
            neighbors = self.network.neighbors(node)
            flat_indices.extend(position_of[neighbor] for neighbor in neighbors)
            indptr[position + 1] = len(flat_indices)
        return indptr, np.array(flat_indices, dtype=np.int64)

    @property
    def indptr(self) -> np.ndarray:
        return self._csr[0]

    @property
    def indices(self) -> np.ndarray:
        return self._csr[1]

    # ------------------------------------------------------------------ #
    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    @cached_property
    def random_index(self) -> np.ndarray:
        """Positions of the nodes whose vote genuinely depends on draws
        (structurally non-constant programs)."""
        non_constant = np.array(
            [self.programs[program_id].constant is None for program_id in self.program_ids],
            dtype=bool,
        )
        return np.flatnonzero(non_constant)

    @property
    def always_rejects(self) -> bool:
        """Whether some node deterministically votes ``False``, which forces
        every trial to reject.  Every program is assigned to at least one
        node, so scanning the distinct programs suffices."""
        return any(program.constant is False for program in self.programs)

    @property
    def deterministic_accept_probability(self) -> float:
        """Exact Pr[all accept] — the product of the per-node acceptance
        probabilities (coins at distinct nodes are independent)."""
        return float(np.prod(self.probabilities))

    @property
    def max_draws(self) -> int:
        """The deepest draw prefix any node's program may consume."""
        return max((program.max_draws for program in self.programs), default=0)

    def program_of(self, position: int) -> VoteProgram:
        """The lowered program of the node at ``position``."""
        return self.programs[int(self.program_ids[position])]

    def degrees(self) -> np.ndarray:
        """Per-node degrees, read off the CSR index pointer."""
        return np.diff(self.indptr)


def _structural_key(
    expr: VoteExpr, seen: Dict[int, int], intern: Dict[Tuple, int]
) -> int:
    """A per-compilation interned key with *structural* equality semantics.

    Equivalent sub-circuits map to the same small integer; the traversal is
    linear in the expression **DAG** (memoized on object identity), unlike
    the dataclass ``__hash__``, which re-expands shared subexpressions
    exponentially (a ``majority`` circuit is a densely shared DAG).
    """
    marker = id(expr)
    if marker in seen:
        return seen[marker]
    if isinstance(expr, Const):
        token: Tuple = ("const", expr.value)
    elif isinstance(expr, Coin):
        token = ("coin", float(expr.p))
    elif isinstance(expr, Not):
        token = ("not", _structural_key(expr.operand, seen, intern))
    elif isinstance(expr, (AllOf, AnyOf)):
        token = (
            "all" if isinstance(expr, AllOf) else "any",
            tuple(_structural_key(operand, seen, intern) for operand in expr.operands),
        )
    elif isinstance(expr, Branch):
        token = (
            "branch",
            _structural_key(expr.condition, seen, intern),
            _structural_key(expr.on_true, seen, intern),
            _structural_key(expr.on_false, seen, intern),
        )
    else:
        raise TypeError(f"not a vote expression: {expr!r}")
    if token not in intern:
        intern[token] = len(intern)
    seen[marker] = intern[token]
    return seen[marker]


def _node_expression(decider: "Decider", ball) -> VoteExpr:
    """The vote expression of one node: the decider's ``vote_program`` when
    present, else the legacy single-Bernoulli ``vote_probability``."""
    vote_program = getattr(decider, "vote_program", None)
    if callable(vote_program):
        expr = vote_program(ball)
        if not isinstance(expr, VoteExpr):
            raise TypeError(
                f"vote_program of {getattr(decider, 'name', decider)!r} returned "
                f"{expr!r}; expected a VoteExpr (coin/const/all_of/any_of/neg/branch)"
            )
        return expr
    probability = float(decider.vote_probability(ball))
    if not 0.0 <= probability <= 1.0:
        raise ValueError(
            f"vote_probability of {decider.name!r} returned {probability}; "
            "probabilities must lie in [0, 1]"
        )
    return coin(probability)


def compile_decision(decider: "Decider", configuration: "Configuration") -> CompiledDecision:
    """Compile a decider against a fixed configuration.

    Extracts every radius-``t`` ball once, asks the decider for its per-node
    vote program (or legacy vote probability), lowers each distinct program
    once, and freezes the result into a :class:`CompiledDecision` (whose CSR
    adjacency materialises lazily on first access).  Raises ``TypeError``
    for deciders that expose neither contract — callers should check
    :func:`is_compilable` first and fall back to the reference path — and
    :class:`ProgramCompilationError` for programs beyond the IR's draw cap.
    """
    recorder = get_recorder()
    with recorder.span(
        "engine.compile", decider=str(getattr(decider, "name", decider))
    ) as span:
        compiled = _compile_decision(decider, configuration)
        span.annotate(nodes=compiled.n_nodes, programs=len(compiled.programs))
    if os.environ.get("REPRO_CHECK_IR", "") not in ("", "0"):
        # Lazy import: repro.check.ir imports this module, and the hook is
        # opt-in (CI / tests), so production compiles pay nothing.
        from repro.check.ir import verify_compiled_decision

        verify_compiled_decision(compiled)
    return compiled


def _compile_decision(decider: "Decider", configuration: "Configuration") -> CompiledDecision:
    if not is_compilable(decider):
        raise TypeError(
            f"decider {getattr(decider, 'name', decider)!r} exposes neither "
            "vote_program(ball) nor vote_probability(ball) and cannot be "
            "compiled; use the legacy path"
        )
    network = configuration.network
    nodes: List[Hashable] = network.nodes()
    radius = int(decider.radius)

    lowered: Dict[int, int] = {}
    key_seen: Dict[int, int] = {}
    key_intern: Dict[Tuple, int] = {}
    # ``key_seen`` memoizes by object identity, so every expression that fed
    # it must stay alive for the whole loop — otherwise a recycled id() could
    # alias a new expression onto a stale key.
    keepalive: List[VoteExpr] = []
    programs: List[VoteProgram] = []
    program_ids = np.empty(len(nodes), dtype=np.int32)
    probabilities = np.empty(len(nodes), dtype=np.float64)
    for position, node in enumerate(nodes):
        ball = configuration.ball(node, radius)
        try:
            expr = _node_expression(decider, ball)
        except ValueError as error:
            raise ValueError(f"decider {decider.name!r} at node {node!r}: {error}") from error
        keepalive.append(expr)
        key = _structural_key(expr, key_seen, key_intern)
        if key not in lowered:
            try:
                program = lower_program(expr)
            except ProgramCompilationError as error:
                raise ProgramCompilationError(
                    f"decider {decider.name!r} at node {node!r}: {error}"
                ) from error
            lowered[key] = len(programs)
            programs.append(program)
        program_ids[position] = lowered[key]
        probabilities[position] = programs[lowered[key]].accept_probability

    return CompiledDecision(
        nodes=tuple(nodes),
        identities=np.array([network.identity(node) for node in nodes], dtype=np.int64),
        probabilities=probabilities,
        programs=tuple(programs),
        program_ids=program_ids,
        network=network,
        decider_name=str(decider.name),
        radius=radius,
    )
