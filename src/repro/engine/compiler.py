"""Compilation of ``(Configuration, Decider)`` pairs into flat numeric form.

The legacy decision path re-extracts balls and re-runs per-node Python voting
rules once per Monte-Carlo trial, even though the configuration — and hence
every ball classification — is fixed across trials.  The compiler factors
that invariant work out: it walks the configuration **once**, asks the
decider for the per-node probability of voting ``True`` (see
:func:`is_compilable`), and stores the result as plain NumPy arrays:

* a CSR adjacency (``indptr``/``indices`` over the identity-sorted node
  order) describing the graph,
* per-node vote probabilities ``probabilities[i] ∈ [0, 1]``, where 0 and 1
  mark deterministic votes (good/unselected balls accept, bad balls of a
  deterministic checker reject) and interior values mark Bernoulli coins,
* the node identities, which seed the per-node random streams in the
  executor's exact mode.

A decider is *compilable* when its per-node :meth:`vote` is a single
Bernoulli decision on the ball: it exposes ``vote_probability(ball)``
returning the probability that ``vote(ball, tape)`` is ``True``, and the
vote consumes at most its tape's **first** uniform draw (``p`` in ``(0, 1)``)
or no draw at all (``p`` in ``{0, 1}``).  All three concrete deciders of the
paper — :class:`~repro.core.decision.AmosDecider`,
:class:`~repro.core.decision.ResilientDecider` and
:class:`~repro.core.decision.LocalCheckerDecider` — have this shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import TYPE_CHECKING, Hashable, List, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.decision import Decider
    from repro.core.languages import Configuration
    from repro.local.network import Network

__all__ = ["CompiledDecision", "compile_decision", "is_compilable"]


def is_compilable(decider: object) -> bool:
    """Whether the decider exposes the single-Bernoulli ``vote_probability``
    contract the engine compiles (see the module docstring)."""
    return callable(getattr(decider, "vote_probability", None))


@dataclass(frozen=True)
class CompiledDecision:
    """A ``(Configuration, Decider)`` pair flattened to NumPy arrays.

    Node order is the network's stable node order; all arrays are indexed by
    position in ``nodes``.

    Attributes
    ----------
    nodes:
        The node objects, fixing the array indexing.
    identities:
        ``int64`` identity of each node (seeds the exact-mode streams).
    probabilities:
        ``float64`` probability that the node votes ``True``.
    indptr / indices:
        CSR adjacency over the same node order (neighbours sorted by
        identity, as everywhere else in the package).  Built lazily on
        first access: trial execution never reads the adjacency, and the
        derandomization loops compile once per trial, so eager CSR
        construction would be dead weight on their hot path.
    decider_name:
        Name of the compiled decider (the legacy tape salt).
    radius:
        Checking radius of the decider (cost bookkeeping / reporting).
    """

    nodes: Tuple[Hashable, ...]
    identities: np.ndarray
    probabilities: np.ndarray
    network: "Network" = field(repr=False)
    decider_name: str
    radius: int

    # ------------------------------------------------------------------ #
    @cached_property
    def _csr(self) -> Tuple[np.ndarray, np.ndarray]:
        position_of = {node: position for position, node in enumerate(self.nodes)}
        indptr = np.zeros(len(self.nodes) + 1, dtype=np.int64)
        flat_indices: List[int] = []
        for position, node in enumerate(self.nodes):
            neighbors = self.network.neighbors(node)
            flat_indices.extend(position_of[neighbor] for neighbor in neighbors)
            indptr[position + 1] = len(flat_indices)
        return indptr, np.array(flat_indices, dtype=np.int64)

    @property
    def indptr(self) -> np.ndarray:
        return self._csr[0]

    @property
    def indices(self) -> np.ndarray:
        return self._csr[1]

    # ------------------------------------------------------------------ #
    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    @property
    def random_index(self) -> np.ndarray:
        """Positions of the nodes whose vote is a genuine coin flip."""
        return np.flatnonzero((self.probabilities > 0.0) & (self.probabilities < 1.0))

    @property
    def always_rejects(self) -> bool:
        """Whether some node deterministically votes ``False`` (probability
        0), which forces every trial to reject."""
        return bool(np.any(self.probabilities == 0.0))

    @property
    def deterministic_accept_probability(self) -> float:
        """Exact Pr[all accept] — the product of the per-node probabilities
        (coins at distinct nodes are independent)."""
        return float(np.prod(self.probabilities))

    def degrees(self) -> np.ndarray:
        """Per-node degrees, read off the CSR index pointer."""
        return np.diff(self.indptr)


def compile_decision(decider: "Decider", configuration: "Configuration") -> CompiledDecision:
    """Compile a decider against a fixed configuration.

    Extracts every radius-``t`` ball once, asks the decider for its per-node
    vote probability, and freezes the result into a
    :class:`CompiledDecision` (whose CSR adjacency materialises lazily on
    first access).  Raises ``TypeError`` for deciders that do not expose
    ``vote_probability`` — callers should check :func:`is_compilable` first
    and fall back to the reference path.
    """
    if not is_compilable(decider):
        raise TypeError(
            f"decider {getattr(decider, 'name', decider)!r} exposes no "
            "vote_probability(ball) and cannot be compiled; use the legacy path"
        )
    network = configuration.network
    nodes: List[Hashable] = network.nodes()
    radius = int(decider.radius)

    probabilities = np.empty(len(nodes), dtype=np.float64)
    for position, node in enumerate(nodes):
        ball = configuration.ball(node, radius)
        probability = float(decider.vote_probability(ball))
        if not 0.0 <= probability <= 1.0:
            raise ValueError(
                f"vote_probability of {decider.name!r} returned {probability} "
                f"at node {node!r}; probabilities must lie in [0, 1]"
            )
        probabilities[position] = probability

    return CompiledDecision(
        nodes=tuple(nodes),
        identities=np.array([network.identity(node) for node in nodes], dtype=np.int64),
        probabilities=probabilities,
        network=network,
        decider_name=str(decider.name),
        radius=radius,
    )
