"""Vectorized construction engine: batched constructor → membership → decider.

The decision engine (:mod:`repro.engine.compiler` / ``executor``) batches the
*decider's* coins, but the derandomization estimators — success probability,
far acceptance, the Claim 3/Theorem 1 amplification runs — draw fresh
**constructor** coins every trial too, and the reference loops rebuild a
:class:`~repro.core.languages.Configuration` per trial through the pure-Python
LOCAL simulator and call ``language.contains`` per trial.  This module factors
that per-trial Python out:

* **Output programs** — a constructor joins the engine by exposing
  ``output_program(ball) -> OutputExpr`` (on the constructor or on its ball
  algorithm): a description of the node's output as a *single* tape draw over
  a finite value alphabet (:func:`const_output`, :func:`uniform_int`,
  :func:`uniform_choice`, :func:`bernoulli_output`).  The contract is that
  interpreting the program against a fresh tape
  (:func:`evaluate_output_expr`) is observationally identical to
  ``algorithm.compute(ball, tape)`` — same output, same draws consumed.
* :func:`compile_construction` walks the network **once**, extracts each
  node's ball, interns the finite output alphabet, and freezes the per-node
  programs into NumPy form; :func:`construction_matrix` then produces the
  ``trials × nodes`` matrix of output codes in one pass — **exact** mode
  replaying the per-trial ``TapeFactory(trial_seed(t), salt)`` streams bit
  for bit (draw *k* of trial *t* = tape draw *k* of that trial's factory),
  **fast** mode fully vectorized from per-node generators (chunk-invariant,
  working set bounded by ``max_bytes`` exactly like the decision executor).
* :func:`compile_membership` lowers language membership to array form over
  the code matrix: radius-0 LCL predicates become per-``(node, value)``
  bad-ball tables, proper coloring becomes CSR-style padded neighbour
  equality checks, and the f-resilient / ε-slack relaxations thresholds on
  the batched bad-ball counts.  Languages beyond these shapes return ``None``
  and the callers fall back to per-trial ``language.contains`` on decoded
  rows (still batched on the construction side).
* :func:`compile_fused_decision` fuses a radius-0, single-coin-per-node
  decider on top of the construction: the decider's vote threshold is
  tabulated per ``(node, output value)`` once, so a whole amplification run
  (construct → membership → decide) needs no per-trial Python at all.

Seed + trial convention (shared with the reference loops)
---------------------------------------------------------
The derandomization estimators derive per-trial master seeds as
``seed * MULTIPLIER + trial`` (``1_000_003`` for success probability,
``104_729`` for far acceptance, ``15_485_863`` for the amplification runs,
``7_919`` for the hard-instance screening).  **Adjacent seeds therefore share
coins across trials**: seed ``s`` at trial ``t + MULTIPLIER`` replays seed
``s + 1`` at trial ``t`` (see the ``seed-plus-trial-convention`` note).  The
batched paths reproduce the convention bit for bit rather than fixing it —
bit-identity with the reference loops is the exactness contract — so tests
comparing runs at different seeds must use *distant* seeds (e.g. 0 and
10_000), never adjacent ones.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import cached_property
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Hashable,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.engine.compiler import (
    ACCEPT,
    _node_expression,
    is_compilable,
    lower_program,
)
from repro.engine.executor import _resolve_max_bytes
from repro.errors import ReproError
from repro.local.ball import collect_ball
from repro.local.randomness import derive_generator
from repro.obs import get_recorder
from repro.stats import PrecisionTarget, ProbabilityEstimate, sequential_estimate

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.decision import Decider
    from repro.core.languages import DistributedLanguage
    from repro.local.network import Network

__all__ = [
    "MAX_OUTPUT_VALUES",
    "OutputExpr",
    "ConstOutput",
    "UniformInt",
    "UniformChoice",
    "BernoulliOutput",
    "const_output",
    "uniform_int",
    "uniform_choice",
    "bernoulli_output",
    "evaluate_output_expr",
    "ConstructionCompilationError",
    "is_construction_compilable",
    "resolve_construction_engine",
    "OutputProgram",
    "CompiledConstruction",
    "compile_construction",
    "construction_matrix",
    "MembershipProgram",
    "compile_membership",
    "FusedDecision",
    "compile_fused_decision",
    "batched_success_counts",
    "batched_bad_counts",
    "batched_acceptance_and_membership",
    "batched_far_acceptance",
    "ConstructionStream",
    "adaptive_success_estimate",
    "adaptive_far_acceptance",
]

#: Hard cap on the size of a compiled construction's output alphabet (guards
#: against e.g. ``uniform_int`` over a huge range exploding the value tables).
MAX_OUTPUT_VALUES = 4096


# --------------------------------------------------------------------------- #
# The output-program IR
# --------------------------------------------------------------------------- #
class OutputExpr:
    """Base class of output-program expressions (immutable, structural
    equality).  Every non-constant expression consumes exactly **one** tape
    draw — the constructors in scope (random coloring, the toy faulty
    constructors of E6/E9) are all single-draw maps from balls to values;
    richer constructors must stay on the reference path."""

    __slots__ = ()


@dataclass(frozen=True)
class ConstOutput(OutputExpr):
    """An output that ignores the tape entirely."""

    value: object


@dataclass(frozen=True)
class UniformInt(OutputExpr):
    """``tape.randint(low, high)`` — one bounded-integer draw, output the
    drawn integer itself."""

    low: int
    high: int


@dataclass(frozen=True)
class UniformChoice(OutputExpr):
    """``tape.choice(values)`` — one ``randint(0, len-1)`` draw indexing a
    fixed value tuple."""

    values: Tuple[object, ...]


@dataclass(frozen=True)
class BernoulliOutput(OutputExpr):
    """``if_true if tape.bernoulli(q) else if_false`` — one uniform draw.

    Unlike the decision IR's :func:`~repro.engine.compiler.coin`, degenerate
    probabilities do **not** fold to constants: ``RandomTape.bernoulli``
    always consumes a draw, so the reference constructor consumes one even
    when ``q`` is 0 or 1, and exactness requires the program to as well.
    """

    q: float
    if_true: object
    if_false: object


def const_output(value: object) -> ConstOutput:
    return ConstOutput(value)


def uniform_int(low: int, high: int) -> UniformInt:
    low, high = int(low), int(high)
    if high < low:
        raise ValueError("empty range for uniform_int")
    return UniformInt(low, high)


def uniform_choice(values: Sequence[object]) -> OutputExpr:
    values = tuple(values)
    if not values:
        raise ValueError("cannot choose from an empty sequence")
    return UniformChoice(values)


def bernoulli_output(q: float, if_true: object, if_false: object) -> BernoulliOutput:
    q = float(q)
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"bernoulli probability must lie in [0, 1]; got {q}")
    return BernoulliOutput(q, if_true, if_false)


def evaluate_output_expr(expr: OutputExpr, tape) -> object:
    """Interpret an output program against a node's private tape.

    This is the *reference semantics* of the IR: the compiled sampling below
    is defined to agree with this interpreter bit for bit (``tape`` is any
    object with the :class:`~repro.local.randomness.RandomTape` draw
    methods).  Constant programs never touch the tape.
    """
    if isinstance(expr, ConstOutput):
        return expr.value
    if tape is None:
        raise ValueError("an output program with draws needs a random tape")
    if isinstance(expr, UniformInt):
        return tape.randint(expr.low, expr.high)
    if isinstance(expr, UniformChoice):
        return tape.choice(expr.values)
    if isinstance(expr, BernoulliOutput):
        return expr.if_true if tape.bernoulli(expr.q) else expr.if_false
    raise TypeError(f"not an output expression: {expr!r}")


class ConstructionCompilationError(ReproError, ValueError):
    """A constructor's output program exceeds what the construction engine
    can express (non-hashable values, oversized alphabets, ...).

    Part of the wire taxonomy so the service can report a malformed
    constructor as a client error instead of a generic 500.
    """

    code = "construction_compilation"
    http_status = 422


# --------------------------------------------------------------------------- #
# Compilation
# --------------------------------------------------------------------------- #
def _output_program_fn(constructor: object) -> Optional[Callable]:
    """The constructor's ``output_program`` contract, looked up on the
    constructor itself or on its ball algorithm."""
    fn = getattr(constructor, "output_program", None)
    if callable(fn):
        return fn
    fn = getattr(getattr(constructor, "algorithm", None), "output_program", None)
    if callable(fn):
        return fn
    return None


def is_construction_compilable(constructor: object) -> bool:
    """Whether the constructor (or its ball algorithm) exposes
    ``output_program(ball) -> OutputExpr``."""
    return _output_program_fn(constructor) is not None


def resolve_construction_engine(engine: str, constructor: object) -> str:
    """The constructor-side counterpart of
    :func:`repro.engine.adapters.resolve_engine`: maps an ``engine=`` value
    to ``"off"``, ``"exact"`` or ``"fast"``.  ``auto`` selects exact mode
    when the constructor is compilable and degrades to the reference path
    otherwise; explicitly requesting ``fast``/``exact`` on a non-compilable
    randomized constructor raises, because silently falling back would
    misreport what was measured.  Deterministic constructors have no coins
    to batch, so any (valid) engine value resolves to the reference path."""
    from repro.engine.adapters import ENGINE_CHOICES

    if engine not in ENGINE_CHOICES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINE_CHOICES}")
    if engine == "off" or not getattr(constructor, "randomized", False):
        return "off"
    compilable = is_construction_compilable(constructor)
    if engine == "auto":
        return "exact" if compilable else "off"
    if not compilable:
        raise TypeError(
            f"engine={engine!r} requested but constructor "
            f"{getattr(constructor, 'name', constructor)!r} exposes no "
            "output_program(ball) and cannot be compiled"
        )
    return engine


@dataclass(frozen=True)
class OutputProgram:
    """One distinct per-node output program, lowered to sampling form.

    ``codes`` maps the draw outcome to the output's code in the compiled
    alphabet: ``const`` programs hold one code, ``randint`` programs one code
    per integer of ``[low, high]``, ``bernoulli`` programs the pair
    ``(code_false, code_true)``.
    """

    kind: str  # "const" | "randint" | "bernoulli"
    codes: Tuple[int, ...]
    low: int = 0
    high: int = 0
    q: float = 0.0

    @property
    def draws(self) -> int:
        return 0 if self.kind == "const" else 1

    @cached_property
    def _code_array(self) -> np.ndarray:
        return np.asarray(self.codes, dtype=np.int32)

    def sample_fast(self, generator: np.random.Generator, size: int) -> np.ndarray:
        """``size`` vectorized draws from a dedicated fast-mode generator."""
        if self.kind == "randint":
            draws = generator.integers(self.low, self.high + 1, size=size)
            return self._code_array[draws - self.low]
        if self.kind == "bernoulli":
            return self._code_array[(generator.random(size) < self.q).astype(np.intp)]
        raise ValueError(f"constant programs are not sampled (kind={self.kind!r})")

    def sample_exact(self, generator: np.random.Generator) -> int:
        """One draw consuming the reference tape stream exactly like the
        interpreted expression (same method, same bounds)."""
        if self.kind == "randint":
            return self.codes[int(generator.integers(self.low, self.high + 1)) - self.low]
        if self.kind == "bernoulli":
            return self.codes[int(generator.random() < self.q)]
        raise ValueError(f"constant programs are not sampled (kind={self.kind!r})")

    @property
    def probabilities(self) -> Dict[int, float]:
        """Exact output distribution over codes (for distribution tests)."""
        if self.kind == "const":
            return {self.codes[0]: 1.0}
        if self.kind == "randint":
            share = 1.0 / len(self.codes)
            out: Dict[int, float] = {}
            for code in self.codes:
                out[code] = out.get(code, 0.0) + share
            return out
        out = {self.codes[0]: 1.0 - self.q}
        out[self.codes[1]] = out.get(self.codes[1], 0.0) + self.q
        return out


@dataclass(frozen=True)
class CompiledConstruction:
    """A ``(Constructor, Network)`` pair flattened to NumPy form.

    Outputs are represented as small-integer **codes** into the interned
    ``values`` alphabet; ``decode_row`` recovers the reference
    ``node -> value`` mapping of one trial.
    """

    nodes: Tuple[Hashable, ...]
    identities: np.ndarray
    values: Tuple[object, ...]
    programs: Tuple[OutputProgram, ...]
    program_ids: np.ndarray
    network: "Network"
    constructor_name: str
    radius: int

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    @cached_property
    def random_index(self) -> np.ndarray:
        """Positions whose output genuinely consumes a draw."""
        return np.flatnonzero(
            np.array(
                [self.programs[pid].draws > 0 for pid in self.program_ids], dtype=bool
            )
        )

    @cached_property
    def constant_codes(self) -> np.ndarray:
        """Per-node code of the draw-free outputs (0 where the node draws;
        those columns are always overwritten)."""
        codes = np.zeros(self.n_nodes, dtype=np.int32)
        for position, pid in enumerate(self.program_ids):
            program = self.programs[pid]
            if program.draws == 0:
                codes[position] = program.codes[0]
        return codes

    def program_of(self, position: int) -> OutputProgram:
        return self.programs[int(self.program_ids[position])]

    def decode_row(self, row: np.ndarray) -> Dict[Hashable, object]:
        """One trial's code row as the reference output mapping."""
        return {
            node: self.values[int(row[position])]
            for position, node in enumerate(self.nodes)
        }


def compile_construction(constructor: object, network: "Network") -> CompiledConstruction:
    """Compile a constructor against a fixed network.

    Extracts every ball once, asks the constructor for each node's output
    program, interns the output alphabet, and dedups structurally identical
    programs.  Raises ``TypeError`` for constructors without the
    ``output_program`` contract and :class:`ConstructionCompilationError`
    for programs beyond the engine's shape (non-hashable values, alphabets
    larger than :data:`MAX_OUTPUT_VALUES`).
    """
    recorder = get_recorder()
    with recorder.span(
        "engine.compile_construction",
        constructor=str(getattr(constructor, "name", constructor)),
    ) as compile_span:
        compiled = _compile_construction(constructor, network, compile_span)
    if os.environ.get("REPRO_CHECK_IR", "") not in ("", "0"):
        # Lazy import: the verifier imports this module, and the hook is
        # opt-in (CI / tests), so production compiles pay nothing.
        from repro.check.ir import verify_compiled_construction

        verify_compiled_construction(compiled)
    return compiled


def _compile_construction(
    constructor: object, network: "Network", compile_span
) -> CompiledConstruction:
    program_fn = _output_program_fn(constructor)
    if program_fn is None:
        raise TypeError(
            f"constructor {getattr(constructor, 'name', constructor)!r} exposes no "
            "output_program(ball) and cannot be compiled; use the reference path"
        )
    rounds = constructor.rounds() if callable(getattr(constructor, "rounds", None)) else 0
    radius = int(rounds or 0)
    nodes: List[Hashable] = network.nodes()

    code_of: Dict[object, int] = {}
    values: List[object] = []

    def intern(value: object) -> int:
        try:
            code = code_of.get(value)
        except TypeError as error:
            raise ConstructionCompilationError(
                f"constructor output {value!r} is not hashable and cannot be "
                "interned into the engine's value alphabet"
            ) from error
        if code is None:
            if len(values) >= MAX_OUTPUT_VALUES:
                raise ConstructionCompilationError(
                    f"constructor output alphabet exceeds {MAX_OUTPUT_VALUES} "
                    "distinct values, which the construction engine cannot express"
                )
            code = code_of[value] = len(values)
            values.append(value)
        return code

    def lower(expr: OutputExpr) -> Tuple:
        if isinstance(expr, ConstOutput):
            return ("const", (intern(expr.value),), 0, 0, 0.0)
        if isinstance(expr, UniformInt):
            if expr.high - expr.low + 1 > MAX_OUTPUT_VALUES:
                raise ConstructionCompilationError(
                    f"uniform_int range [{expr.low}, {expr.high}] exceeds "
                    f"{MAX_OUTPUT_VALUES} values"
                )
            codes = tuple(intern(v) for v in range(expr.low, expr.high + 1))
            return ("randint", codes, expr.low, expr.high, 0.0)
        if isinstance(expr, UniformChoice):
            codes = tuple(intern(v) for v in expr.values)
            return ("randint", codes, 0, len(expr.values) - 1, 0.0)
        if isinstance(expr, BernoulliOutput):
            codes = (intern(expr.if_false), intern(expr.if_true))
            return ("bernoulli", codes, 0, 0, float(expr.q))
        raise TypeError(
            f"output_program of {getattr(constructor, 'name', constructor)!r} "
            f"returned {expr!r}; expected an OutputExpr "
            "(const_output/uniform_int/uniform_choice/bernoulli_output)"
        )

    interned: Dict[Tuple, int] = {}
    programs: List[OutputProgram] = []
    program_ids = np.empty(len(nodes), dtype=np.int32)
    for position, node in enumerate(nodes):
        ball = collect_ball(network, node, radius)
        key = lower(program_fn(ball))
        if key not in interned:
            kind, codes, low, high, q = key
            interned[key] = len(programs)
            programs.append(OutputProgram(kind=kind, codes=codes, low=low, high=high, q=q))
        program_ids[position] = interned[key]

    compile_span.annotate(nodes=len(nodes), programs=len(programs), alphabet=len(values))
    return CompiledConstruction(
        nodes=tuple(nodes),
        identities=np.array([network.identity(node) for node in nodes], dtype=np.int64),
        values=tuple(values),
        programs=tuple(programs),
        program_ids=program_ids,
        network=network,
        constructor_name=str(getattr(constructor, "name", "constructor")),
        radius=radius,
    )


# --------------------------------------------------------------------------- #
# Execution: the trials × nodes output-code matrix
# --------------------------------------------------------------------------- #
def construction_matrix(
    compiled: CompiledConstruction,
    trials: int,
    seed: int = 0,
    mode: str = "fast",
    trial_seed: Optional[Callable[[int], int]] = None,
    salt: Optional[object] = None,
    max_bytes: Optional[int] = None,
) -> np.ndarray:
    """The ``trials × nodes`` matrix of output codes.

    ``exact`` mode: for trial ``t`` the ``k``-th draw consumed by node ``v``
    is the ``k``-th draw of ``TapeFactory(trial_seed(t), salt).tape_for(v)``
    — bit-for-bit the stream the reference
    ``constructor.configuration(network, tape_factory=...)`` loop consumes.
    ``fast`` mode: per-node generators derived from ``(seed, salt, node
    identity)``, fully vectorized; chunk-invariant in both ``trials`` and
    ``max_bytes`` because each node's generator is consumed sequentially.

    This is the one-shot form of :class:`ConstructionStream` (a single
    ``sample(trials)`` on a fresh stream), so the fixed-trial and adaptive
    paths cannot drift apart: there is exactly one sampling implementation.
    """
    if trials < 1:
        raise ValueError("trials must be positive")
    return ConstructionStream(
        compiled,
        seed=seed,
        mode=mode,
        trial_seed=trial_seed,
        salt=salt,
        max_bytes=max_bytes,
    ).sample(trials)


# --------------------------------------------------------------------------- #
# Membership lowering
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class MembershipProgram:
    """Batched membership for one language over a compiled construction.

    ``bad_counter(codes)`` returns the per-trial bad-ball count of the *base*
    LCL language; membership is ``count <= budget`` (``budget`` is 0 for the
    plain language and the tolerated violations for the f-resilient /
    ε-slack relaxations).
    """

    bad_counter: Callable[[np.ndarray], np.ndarray]
    budget: int
    language_name: str

    def bad_counts(self, codes: np.ndarray) -> np.ndarray:
        return self.bad_counter(codes)

    def member_vector(self, codes: np.ndarray) -> np.ndarray:
        return self.bad_counter(codes) <= self.budget


def _radius_zero_table_counter(
    base, compiled: CompiledConstruction
) -> Callable[[np.ndarray], np.ndarray]:
    """Per-(node, value) bad-ball table for radius-0 LCL languages: the ball
    of a node contains only the node itself, so ``is_bad_ball`` is a function
    of (identity, input, output value), tabulated once per reachable value."""
    n = compiled.n_nodes
    table = np.zeros((n, len(compiled.values)), dtype=bool)
    for position, node in enumerate(compiled.nodes):
        program = compiled.program_of(position)
        for code in set(program.codes):
            ball = collect_ball(
                compiled.network, node, 0, outputs={node: compiled.values[code]}
            )
            table[position, code] = bool(base.is_bad_ball(ball))
    rows = np.arange(n)

    def counter(codes: np.ndarray) -> np.ndarray:
        return table[rows[None, :], codes].sum(axis=1)

    return counter


def _proper_coloring_counter(
    base, compiled: CompiledConstruction, max_bytes: int
) -> Callable[[np.ndarray], np.ndarray]:
    """Padded-neighbour equality counter for proper coloring: a node's ball
    is bad iff its color leaves the palette or equals a neighbour's color.
    Codes intern distinct values, so code equality is value equality."""
    palette_bad = np.zeros(len(compiled.values), dtype=bool)
    if base.num_colors is not None:
        for code, value in enumerate(compiled.values):
            palette_bad[code] = not (
                isinstance(value, int) and 1 <= value <= base.num_colors
            )
    n = compiled.n_nodes
    position_of = {node: position for position, node in enumerate(compiled.nodes)}
    neighbor_lists = [
        [position_of[u] for u in compiled.network.neighbors(node)]
        for node in compiled.nodes
    ]
    max_degree = max((len(lst) for lst in neighbor_lists), default=0)
    # Sentinel column n holds code -1, which never equals a real code.
    padded = np.full((n, max(max_degree, 1)), n, dtype=np.int64)
    for position, lst in enumerate(neighbor_lists):
        padded[position, : len(lst)] = lst

    def counter(codes: np.ndarray) -> np.ndarray:
        trials = codes.shape[0]
        counts = np.empty(trials, dtype=np.int64)
        # 8 bytes/element bounds the dominant (block, n, max_degree)
        # gathered-codes temporary, keeping the working set under
        # ``max_bytes`` like every other chunked path in the engine.
        block = max(1, max_bytes // max(1, 8 * n * padded.shape[1]))
        for start in range(0, trials, block):
            stop = min(trials, start + block)
            chunk = codes[start:stop]
            extended = np.concatenate(
                [chunk, np.full((stop - start, 1), -1, dtype=chunk.dtype)], axis=1
            )
            conflict = (extended[:, padded] == chunk[:, :, None]).any(axis=2)
            counts[start:stop] = (conflict | palette_bad[chunk]).sum(axis=1)
        return counts

    return counter


def compile_membership(
    language: "DistributedLanguage",
    compiled: CompiledConstruction,
    max_bytes: Optional[int] = None,
) -> Optional[MembershipProgram]:
    """Lower a language to batched membership over the code matrix.

    Returns ``None`` for languages the engine cannot express — callers fall
    back to per-trial ``language.contains`` on decoded rows.  Membership is
    a deterministic function of the outputs, so the lowered evaluation is
    exact (not merely distributional) whenever it exists.
    """
    from repro.core.lcl import LCLLanguage, ProperColoring
    from repro.core.relaxations import EpsSlackLanguage, FResilientLanguage

    max_bytes = _resolve_max_bytes(max_bytes)
    base, budget = language, 0
    if isinstance(language, FResilientLanguage):
        base, budget = language.base, language.f
    elif isinstance(language, EpsSlackLanguage):
        base, budget = language.base, language.allowed_bad(compiled.n_nodes)

    counter: Optional[Callable[[np.ndarray], np.ndarray]] = None
    if isinstance(base, ProperColoring):
        counter = _proper_coloring_counter(base, compiled, max_bytes)
    elif isinstance(base, LCLLanguage) and int(base.radius) == 0:
        counter = _radius_zero_table_counter(base, compiled)
    if counter is None:
        return None
    return MembershipProgram(
        bad_counter=counter, budget=int(budget), language_name=str(language.name)
    )


# --------------------------------------------------------------------------- #
# Fused constructor → decider evaluation
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class FusedDecision:
    """A radius-0 decider tabulated per ``(node, output value)``.

    For each node and each value its program can output, the decider's vote
    program is lowered once; fusion requires every such program to consume
    at most one draw (a plain coin or a constant), which covers the
    single-Bernoulli deciders the derandomization experiments use.  The per
    -trial vote is then ``on_true`` if the node's tape draw falls below the
    tabulated threshold and ``on_false`` otherwise (constants hold the vote
    in both and consume no draw).
    """

    thresholds: np.ndarray  # (nodes, values) float64
    on_true: np.ndarray  # (nodes, values) bool
    on_false: np.ndarray  # (nodes, values) bool
    draws: np.ndarray  # (nodes, values) int8
    decider_name: str
    compiled: CompiledConstruction

    def fast_vote_stream(
        self, seed: int, salt: object, max_bytes: Optional[int] = None
    ) -> Callable[[np.ndarray], np.ndarray]:
        """A resumable fast-mode vote sampler over per-node generators.

        The returned callable maps a ``(count, nodes)`` code chunk to its
        vote chunk; generators persist across calls, so concatenating the
        votes of successive chunks is bit-identical to one
        :meth:`vote_matrix_fast` call on the concatenated codes (the
        chunk-invariance the adaptive estimators rely on).  One uniform per
        (trial, node) is drawn regardless of the realized value's constancy
        — ``u < 1.0`` always holds and ``u < 0.0`` never does, so constants
        come out right and the stream stays independent of the sampled
        outputs.
        """
        max_bytes = _resolve_max_bytes(max_bytes)
        n = self.compiled.n_nodes
        rows = np.arange(n)
        generators = [
            derive_generator(
                int(seed),
                "construct-fast-decide",
                salt,
                self.decider_name,
                int(self.compiled.identities[position]),
            )
            for position in range(n)
        ]

        def sample(codes: np.ndarray) -> np.ndarray:
            trials = codes.shape[0]
            votes = np.empty((trials, n), dtype=bool)
            trial_block = max(1, max_bytes // (8 * max(n, 1)))
            for start in range(0, trials, trial_block):
                stop = min(trials, start + trial_block)
                uniforms = np.empty((stop - start, n), dtype=np.float64)
                for position, generator in enumerate(generators):
                    uniforms[:, position] = generator.random(stop - start)
                chunk = codes[start:stop]
                thresholds = self.thresholds[rows[None, :], chunk]
                takes_true = uniforms < thresholds
                votes[start:stop] = np.where(
                    takes_true,
                    self.on_true[rows[None, :], chunk],
                    self.on_false[rows[None, :], chunk],
                )
            return votes

        return sample

    def vote_matrix_fast(
        self,
        codes: np.ndarray,
        seed: int,
        salt: object,
        max_bytes: Optional[int] = None,
    ) -> np.ndarray:
        """The ``trials × nodes`` vote matrix from per-node fast generators
        (one-shot form of :meth:`fast_vote_stream`)."""
        return self.fast_vote_stream(seed, salt, max_bytes=max_bytes)(codes)

    def vote_row_exact(
        self, code_row: np.ndarray, master_seed: int, salt: object
    ) -> np.ndarray:
        """One trial's votes under the reference decide tape streams —
        bit-identical to ``decider.decide(configuration,
        TapeFactory(master_seed, salt))`` for the decoded configuration."""
        n = len(code_row)
        votes = np.empty(n, dtype=bool)
        for position in range(n):
            code = int(code_row[position])
            if self.draws[position, code]:
                generator = derive_generator(
                    int(master_seed), salt, int(self.compiled.identities[position])
                )
                takes_true = float(generator.random()) < self.thresholds[position, code]
                votes[position] = (
                    self.on_true[position, code]
                    if takes_true
                    else self.on_false[position, code]
                )
            else:
                votes[position] = self.on_true[position, code]
        return votes


def compile_fused_decision(
    decider: "Decider", compiled: CompiledConstruction
) -> Optional[FusedDecision]:
    """Tabulate a decider's vote programs over the construction alphabet.

    Returns ``None`` when fusion is unavailable — the decider exposes no
    compilable vote, checks a radius beyond 0 (its ball would then contain
    neighbours' sampled outputs, which the per-value table cannot express),
    or some per-value program needs more than one draw.  Callers fall back
    to the per-trial decision path, which handles all of those.
    """
    if not is_compilable(decider) or int(getattr(decider, "radius", 0)) != 0:
        return None
    n = compiled.n_nodes
    n_values = len(compiled.values)
    thresholds = np.zeros((n, n_values), dtype=np.float64)
    on_true = np.zeros((n, n_values), dtype=bool)
    on_false = np.zeros((n, n_values), dtype=bool)
    draws = np.zeros((n, n_values), dtype=np.int8)
    for position, node in enumerate(compiled.nodes):
        program = compiled.program_of(position)
        for code in set(program.codes):
            ball = collect_ball(
                compiled.network, node, 0, outputs={node: compiled.values[code]}
            )
            lowered = lower_program(_node_expression(decider, ball))
            if lowered.max_draws > 1:
                return None
            if lowered.root < 0:
                vote = lowered.root == ACCEPT
                on_true[position, code] = on_false[position, code] = vote
                thresholds[position, code] = 1.0 if vote else 0.0
            else:
                thresholds[position, code] = float(lowered.thresholds[lowered.root])
                on_true[position, code] = int(lowered.on_true[lowered.root]) == ACCEPT
                on_false[position, code] = int(lowered.on_false[lowered.root]) == ACCEPT
                draws[position, code] = 1
    return FusedDecision(
        thresholds=thresholds,
        on_true=on_true,
        on_false=on_false,
        draws=draws,
        decider_name=str(decider.name),
        compiled=compiled,
    )


# --------------------------------------------------------------------------- #
# Batched counterparts of the derandomization estimators
# --------------------------------------------------------------------------- #
def _active_fusion():
    """The ambient :class:`repro.engine.fusion.FusionContext`, if any.

    Lazy import: :mod:`repro.engine.fusion` imports this module, and the
    ambient context only exists inside a fused sweep group, so stand-alone
    estimator calls pay one ContextVar read."""
    from repro.engine.fusion import active_fusion

    return active_fusion()


def _shared_codes(
    compiled: CompiledConstruction,
    trials: int,
    seed_base: int,
    salt: object,
    mode: str,
    max_bytes: Optional[int],
) -> np.ndarray:
    """The trial matrix of one batched estimator call: served from the
    ambient fusion context when one is installed (bit-identical by the
    context's exactness contract), one-shot otherwise."""
    context = _active_fusion()
    if context is not None:
        codes = context.codes_for(compiled, trials, seed_base, salt, mode)
        if codes is not None:
            return codes
    return construction_matrix(
        compiled,
        trials,
        seed=seed_base,
        mode=mode,
        trial_seed=lambda trial: seed_base + trial,
        salt=salt,
        max_bytes=max_bytes,
    )


def batched_success_counts(
    constructor: object,
    language: "DistributedLanguage",
    network: "Network",
    trials: int,
    seed_base: int,
    salt: object,
    mode: str,
    max_bytes: Optional[int] = None,
) -> int:
    """Engine counterpart of one instance's inner loop in
    :func:`repro.core.construction.estimate_success_probability` (and, with
    the complement, :func:`repro.core.derandomization.find_hard_instances`).

    Exact mode replays ``TapeFactory(seed_base + trial, salt)`` bit for bit.
    Returns the number of trials whose constructed configuration belongs to
    the language.
    """
    compiled = compile_construction(constructor, network)
    context = _active_fusion()
    if context is not None:
        members = context.member_vector_for(compiled, language, trials, seed_base, salt, mode)
        if members is not None:
            return int(np.count_nonzero(members))
    codes = construction_matrix(
        compiled,
        trials,
        seed=seed_base,
        mode=mode,
        trial_seed=lambda trial: seed_base + trial,
        salt=salt,
        max_bytes=max_bytes,
    )
    return int(np.count_nonzero(_member_vector(language, compiled, codes)))


def batched_bad_counts(
    constructor: object,
    language: "DistributedLanguage",
    network: "Network",
    trials: int,
    seed_base: int,
    salt: object,
    mode: str,
    max_bytes: Optional[int] = None,
) -> Optional[np.ndarray]:
    """Per-trial bad-ball counts of ``language`` over freshly constructed
    configurations — the engine counterpart of a ``fraction_bad`` probe loop
    (count ``t`` divided by the node count is trial ``t``'s bad fraction).

    Exact mode replays ``TapeFactory(seed_base + trial, salt)`` bit for bit.
    Returns ``None`` when the language's membership cannot be lowered
    (callers keep their reference loop).  Inside a fused sweep group the
    matrix and the counts are served from the shared context."""
    compiled = compile_construction(constructor, network)
    context = _active_fusion()
    if context is not None:
        counts = context.bad_counts_for(compiled, language, trials, seed_base, salt, mode)
        if counts is not None:
            return counts
    membership = compile_membership(language, compiled, max_bytes)
    if membership is None:
        return None
    codes = construction_matrix(
        compiled,
        trials,
        seed=seed_base,
        mode=mode,
        trial_seed=lambda trial: seed_base + trial,
        salt=salt,
        max_bytes=max_bytes,
    )
    return membership.bad_counts(codes)


def _member_vector(
    language: "DistributedLanguage", compiled: CompiledConstruction, codes: np.ndarray
) -> np.ndarray:
    """Per-trial membership, lowered when possible and decoded otherwise.

    Membership is a deterministic function of the outputs, so the decoded
    fallback is bit-identical to the lowered evaluation — just slower (it
    still benefits from the batched construction side).
    """
    membership = compile_membership(language, compiled)
    if membership is not None:
        return membership.member_vector(codes)
    from repro.core.languages import Configuration

    return np.array(
        [
            language.contains(Configuration(compiled.network, compiled.decode_row(row)))
            for row in codes
        ],
        dtype=bool,
    )


def batched_acceptance_and_membership(
    constructor: object,
    decider: "Decider",
    language: "DistributedLanguage",
    network: "Network",
    trials: int,
    seed_base: int,
    construct_salt: object,
    decide_salt: object,
    mode: str,
    max_bytes: Optional[int] = None,
) -> Optional[Tuple[float, float]]:
    """Fused engine counterpart of the amplification estimator
    :func:`repro.core.derandomization._estimate_acceptance_and_membership`.

    Returns ``(acceptance, membership)`` or ``None`` when decider fusion is
    unavailable (the caller then keeps the per-trial decision loop).  Exact
    mode replays the reference seeding ``TapeFactory(seed_base + trial,
    construct_salt/decide_salt)`` bit for bit.
    """
    compiled = compile_construction(constructor, network)
    fused = compile_fused_decision(decider, compiled)
    if fused is None:
        return None
    context = _active_fusion()
    members = None
    if context is not None:
        members = context.member_vector_for(
            compiled, language, trials, seed_base, construct_salt, mode
        )
    codes = _shared_codes(compiled, trials, seed_base, construct_salt, mode, max_bytes)
    if members is None:
        members = _member_vector(language, compiled, codes)
    if mode == "exact":
        accepted = np.fromiter(
            (
                bool(fused.vote_row_exact(codes[trial], seed_base + trial, decide_salt).all())
                for trial in range(trials)
            ),
            dtype=bool,
            count=trials,
        )
    else:
        accepted = fused.vote_matrix_fast(
            codes, seed_base, decide_salt, max_bytes=max_bytes
        ).all(axis=1)
    return (
        float(np.count_nonzero(accepted)) / trials,
        float(np.count_nonzero(members)) / trials,
    )


class ConstructionStream:
    """A resumable trial stream over a compiled construction.

    ``sample(count)`` returns the ``(count, nodes)`` code matrix of the
    **next** ``count`` trials; the concatenation of successive samples is
    bit-identical to one :func:`construction_matrix` call with the total
    trial count (exact mode derives each trial from its own master seed;
    fast mode holds every node's generator open across batches).  This is
    the construction-side counterpart of
    :class:`repro.engine.executor.AcceptStream`.
    """

    def __init__(
        self,
        compiled: CompiledConstruction,
        seed: int = 0,
        mode: str = "fast",
        trial_seed: Optional[Callable[[int], int]] = None,
        salt: Optional[object] = None,
        max_bytes: Optional[int] = None,
    ) -> None:
        if mode not in ("fast", "exact"):
            raise ValueError(f"unknown engine mode {mode!r}; expected 'fast' or 'exact'")
        self.compiled = compiled
        self.mode = mode
        self._salt = compiled.constructor_name if salt is None else salt
        if trial_seed is None:
            trial_seed = lambda trial: seed + trial  # noqa: E731 - the legacy convention
        self._trial_seed = trial_seed
        self._max_bytes = _resolve_max_bytes(max_bytes)
        self._offset = 0
        self._generators: List[np.random.Generator] = []
        if mode == "fast":
            self._generators = [
                derive_generator(
                    int(seed),
                    "construct-fast",
                    self._salt,
                    compiled.constructor_name,
                    int(compiled.identities[position]),
                )
                for position in compiled.random_index
            ]

    @property
    def trials_sampled(self) -> int:
        return self._offset

    def sample(self, count: int) -> np.ndarray:
        if count < 1:
            raise ValueError("count must be positive")
        compiled = self.compiled
        start = self._offset
        self._offset += count
        codes = np.broadcast_to(compiled.constant_codes, (count, compiled.n_nodes)).copy()
        random_positions = compiled.random_index
        if len(random_positions) == 0:
            return codes
        recorder = get_recorder()
        with recorder.span(
            "engine.construct",
            mode=self.mode,
            trials=count,
            offset=start,
            nodes=compiled.n_nodes,
            random_nodes=len(random_positions),
        ):
            if self.mode == "exact":
                recorder.counter("engine.chunks")
                programs = [compiled.program_of(position) for position in random_positions]
                for trial in range(count):
                    master = int(self._trial_seed(start + trial))
                    for position, program in zip(random_positions, programs):
                        generator = derive_generator(
                            master, self._salt, int(compiled.identities[position])
                        )
                        codes[trial, position] = program.sample_exact(generator)
                return codes
            trial_block = max(1, self._max_bytes // (8 * max(len(random_positions), 1)))
            for lo in range(0, count, trial_block):
                hi = min(count, lo + trial_block)
                recorder.counter("engine.chunks")
                for position, generator in zip(random_positions, self._generators):
                    codes[lo:hi, position] = compiled.program_of(position).sample_fast(
                        generator, hi - lo
                    )
            return codes


def adaptive_success_estimate(
    constructor: object,
    language: "DistributedLanguage",
    network: "Network",
    target: PrecisionTarget,
    seed_base: int,
    salt: object,
    mode: str,
    max_bytes: Optional[int] = None,
) -> ProbabilityEstimate:
    """Adaptive counterpart of :func:`batched_success_counts`: construct in
    chunks, test membership per chunk, stop once ``target`` is met.

    Same seeding (``TapeFactory(seed_base + trial, salt)`` in exact mode),
    chunk-invariant streams — stopping after ``k`` trials reports exactly
    the fixed ``k``-trial success rate.  Constructions with no random
    outputs are deterministic and return an exact degenerate estimate.
    """
    compiled = compile_construction(constructor, network)
    stream = ConstructionStream(
        compiled,
        seed=seed_base,
        mode=mode,
        trial_seed=lambda trial: seed_base + trial,
        salt=salt,
        max_bytes=max_bytes,
    )
    if len(compiled.random_index) == 0:
        member = bool(_member_vector(language, compiled, stream.sample(1))[0])
        return ProbabilityEstimate.exact(member, confidence=target.confidence)
    return sequential_estimate(
        target,
        lambda count: int(
            np.count_nonzero(_member_vector(language, compiled, stream.sample(count)))
        ),
    )


def adaptive_far_acceptance(
    constructor: object,
    decider: "Decider",
    network: "Network",
    node: Hashable,
    distance: int,
    target: PrecisionTarget,
    seed_base: int,
    construct_salt: object,
    decide_salt: object,
    mode: str,
    max_bytes: Optional[int] = None,
) -> Optional[ProbabilityEstimate]:
    """Adaptive counterpart of :func:`batched_far_acceptance` for a single
    anchor: fused construct→decide chunks until ``target`` is met.

    Returns ``None`` when decider fusion is unavailable (callers fall back
    to the per-trial reference loop, which handles every decider).  The
    seeding and streams match the batched path bit for bit, so stopping
    after ``k`` trials reports the fixed ``k``-trial estimate.
    """
    compiled = compile_construction(constructor, network)
    fused = compile_fused_decision(decider, compiled)
    if fused is None:
        return None
    distances = network.distances_from(node)
    far = np.array(
        [distances.get(other, np.inf) > distance for other in compiled.nodes],
        dtype=bool,
    )
    stream = ConstructionStream(
        compiled,
        seed=seed_base,
        mode=mode,
        trial_seed=lambda trial: seed_base + trial,
        salt=construct_salt,
        max_bytes=max_bytes,
    )
    fast_votes = (
        fused.fast_vote_stream(seed_base, decide_salt, max_bytes=max_bytes)
        if mode == "fast"
        else None
    )

    def draw(count: int) -> int:
        start = stream.trials_sampled
        codes = stream.sample(count)
        if fast_votes is not None:
            votes = fast_votes(codes)
        else:
            votes = np.empty((count, compiled.n_nodes), dtype=bool)
            for trial in range(count):
                votes[trial] = fused.vote_row_exact(
                    codes[trial], seed_base + start + trial, decide_salt
                )
        accepted_far = votes[:, far].all(axis=1) if far.any() else np.ones(count, bool)
        return int(np.count_nonzero(accepted_far))

    return sequential_estimate(target, draw)


def batched_far_acceptance(
    constructor: object,
    decider: "Decider",
    network: "Network",
    candidates: Sequence[Hashable],
    distance: int,
    trials: int,
    seed_base: int,
    construct_salt: object,
    decide_salt: object,
    mode: str,
    max_bytes: Optional[int] = None,
) -> Optional[Dict[Hashable, float]]:
    """Batched far-acceptance probabilities for *all* candidate anchors from
    **one** construction pass.

    The constructor's coins do not depend on the candidate (the reference
    :func:`~repro.core.derandomization.far_acceptance_probability` loop uses
    the same seed and salt for every candidate), so one ``trials × nodes``
    vote matrix serves every candidate: per candidate only the "far" node
    mask changes.  Returns ``None`` when decider fusion is unavailable.
    """
    compiled = compile_construction(constructor, network)
    fused = compile_fused_decision(decider, compiled)
    if fused is None:
        return None
    codes = _shared_codes(compiled, trials, seed_base, construct_salt, mode, max_bytes)
    if mode == "exact":
        votes = np.empty((trials, compiled.n_nodes), dtype=bool)
        for trial in range(trials):
            votes[trial] = fused.vote_row_exact(
                codes[trial], seed_base + trial, decide_salt
            )
    else:
        votes = fused.vote_matrix_fast(codes, seed_base, decide_salt, max_bytes=max_bytes)
    results: Dict[Hashable, float] = {}
    for candidate in candidates:
        distances = network.distances_from(candidate)
        far = np.array(
            [distances.get(node, np.inf) > distance for node in compiled.nodes],
            dtype=bool,
        )
        accepted_far = votes[:, far].all(axis=1) if far.any() else np.ones(trials, bool)
        results[candidate] = float(np.count_nonzero(accepted_far)) / trials
    return results
