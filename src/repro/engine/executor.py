"""Batched trial evaluation of compiled decisions.

One Monte-Carlo trial of a compiled decider is a Bernoulli draw per
coin-flipping node followed by a global AND; ``trials`` trials are therefore
a single ``trials × coins`` uniform matrix compared against the per-node
probabilities and reduced with :func:`numpy.ndarray.all`.  Two sampling modes
are provided:

``fast`` (default)
    One vectorized :class:`numpy.random.Generator` drives the whole matrix.
    The per-trial accept/reject stream differs from the legacy per-node-tape
    path, but its distribution is identical (each cell is an independent
    uniform compared against the same probability) — the equivalence test in
    ``tests/engine`` checks this statistically and via the exact per-trial
    product :attr:`CompiledDecision.deterministic_accept_probability`.

``exact``
    Bit-for-bit reproduction of the reference path: for trial ``i`` the
    uniform of node ``v`` is the **first draw** of the tape
    ``TapeFactory(trial_seed(i), salt).tape_for(identity(v))``, exactly the
    stream :meth:`repro.core.decision.Decider.acceptance_probability` and
    :func:`repro.core.decision.estimate_guarantee` consume.  Only nodes whose
    vote is a genuine coin flip ever read their tape (matching the reference
    voting rules, which return early on deterministic balls), so this mode
    still skips the per-trial tape construction for every deterministic node
    — usually the overwhelming majority.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.engine.compiler import CompiledDecision
from repro.local.randomness import derive_seed

__all__ = [
    "accept_vector",
    "vote_matrix",
    "acceptance_probability",
    "exact_single_trial_votes",
]

_MODES = ("fast", "exact")


def _fast_generator(compiled: CompiledDecision, seed: int, salt: object) -> np.random.Generator:
    """The fast mode's generator, decorrelated across deciders and salts."""
    return np.random.default_rng(derive_seed(int(seed), "engine-fast", salt, compiled.decider_name))


def _exact_uniforms(
    compiled: CompiledDecision,
    trials: int,
    trial_seed: Callable[[int], int],
    salt: object,
) -> np.ndarray:
    """The ``trials × coins`` uniform matrix of the reference tape streams.

    Each cell is the first draw of the corresponding per-node tape; the tape
    seeds go through the same SHA-256 derivation as
    :class:`~repro.local.randomness.TapeFactory`, so equality with the
    reference path is exact, not approximate.
    """
    random_positions = compiled.random_index
    identities = compiled.identities[random_positions]
    uniforms = np.empty((trials, len(random_positions)), dtype=np.float64)
    for trial in range(trials):
        master = int(trial_seed(trial))
        for column, identity in enumerate(identities):
            tape_seed = derive_seed(master, salt, int(identity))
            uniforms[trial, column] = np.random.default_rng(tape_seed).random()
    return uniforms


def _exact_accepts(
    compiled: CompiledDecision,
    trials: int,
    trial_seed: Callable[[int], int],
    salt: object,
) -> np.ndarray:
    """Per-trial global acceptance under the reference tape streams.

    Unlike :func:`_exact_uniforms` this short-circuits each trial at the
    first rejecting coin — exactly like the reference loop's early return —
    so on coin-heavy, low-acceptance configurations the exact mode never
    costs more tape derivations per trial than the loop it replaces.  The
    short-circuit cannot change the result: per-node draws are independent
    (seeded by identity), so skipping later coins skips values that could
    not affect the conjunction.
    """
    random_positions = compiled.random_index
    coins = [
        (int(compiled.identities[position]), float(compiled.probabilities[position]))
        for position in random_positions
    ]
    accepted = np.zeros(trials, dtype=bool)
    for trial in range(trials):
        master = int(trial_seed(trial))
        for identity, threshold in coins:
            tape_seed = derive_seed(master, salt, identity)
            if not np.random.default_rng(tape_seed).random() < threshold:
                break
        else:
            accepted[trial] = True
    return accepted


def _resolve(
    compiled: CompiledDecision,
    mode: str,
    seed: int,
    trial_seed: Optional[Callable[[int], int]],
    salt: Optional[object],
):
    if mode not in _MODES:
        raise ValueError(f"unknown engine mode {mode!r}; expected one of {_MODES}")
    if salt is None:
        salt = compiled.decider_name
    if trial_seed is None:
        trial_seed = lambda trial: seed + trial  # noqa: E731 - the legacy convention
    return salt, trial_seed


def accept_vector(
    compiled: CompiledDecision,
    trials: int,
    seed: int = 0,
    mode: str = "fast",
    trial_seed: Optional[Callable[[int], int]] = None,
    salt: Optional[object] = None,
) -> np.ndarray:
    """Per-trial global acceptance (``all`` over the node votes).

    Returns a boolean vector of length ``trials``.  Only the coin-flipping
    columns are sampled; a deterministic reject anywhere short-circuits the
    whole matrix to ``False``.
    """
    if trials < 1:
        raise ValueError("trials must be positive")
    salt, trial_seed = _resolve(compiled, mode, seed, trial_seed, salt)
    if compiled.always_rejects:
        return np.zeros(trials, dtype=bool)
    random_positions = compiled.random_index
    if len(random_positions) == 0:
        return np.ones(trials, dtype=bool)
    if mode == "exact":
        return _exact_accepts(compiled, trials, trial_seed, salt)
    thresholds = compiled.probabilities[random_positions]
    uniforms = _fast_generator(compiled, seed, salt).random((trials, len(random_positions)))
    return np.all(uniforms < thresholds, axis=1)


def vote_matrix(
    compiled: CompiledDecision,
    trials: int,
    seed: int = 0,
    mode: str = "fast",
    trial_seed: Optional[Callable[[int], int]] = None,
    salt: Optional[object] = None,
) -> np.ndarray:
    """The full ``trials × nodes`` boolean vote matrix.

    Use :func:`accept_vector` when only global acceptance is needed — it
    avoids materialising the deterministic columns and short-circuits exact
    mode.  This entry point serves callers that reduce over *subsets* of the
    node votes (the single-trial case is
    :func:`exact_single_trial_votes`, which the derandomization loops use
    for the Claim 4 far-acceptance events).
    """
    if trials < 1:
        raise ValueError("trials must be positive")
    salt, trial_seed = _resolve(compiled, mode, seed, trial_seed, salt)
    votes = np.broadcast_to(compiled.probabilities >= 1.0, (trials, compiled.n_nodes)).copy()
    random_positions = compiled.random_index
    if len(random_positions):
        thresholds = compiled.probabilities[random_positions]
        if mode == "fast":
            uniforms = _fast_generator(compiled, seed, salt).random(
                (trials, len(random_positions))
            )
        else:
            uniforms = _exact_uniforms(compiled, trials, trial_seed, salt)
        votes[:, random_positions] = uniforms < thresholds
    return votes


def acceptance_probability(
    compiled: CompiledDecision,
    trials: int,
    seed: int = 0,
    mode: str = "fast",
    trial_seed: Optional[Callable[[int], int]] = None,
    salt: Optional[object] = None,
) -> float:
    """Monte-Carlo Pr[all nodes accept] over ``trials`` batched trials."""
    accepted = accept_vector(
        compiled, trials, seed=seed, mode=mode, trial_seed=trial_seed, salt=salt
    )
    return float(np.count_nonzero(accepted)) / trials


def exact_single_trial_votes(
    compiled: CompiledDecision,
    master_seed: int,
    salt: object,
) -> np.ndarray:
    """One trial's per-node votes under the reference tape streams.

    Equivalent to ``decider.decide(configuration,
    tape_factory=TapeFactory(master_seed, salt))`` restricted to the vote
    booleans, and bit-for-bit identical to it for compilable deciders.
    """
    votes = compiled.probabilities >= 1.0
    random_positions = compiled.random_index
    if len(random_positions):
        uniforms = _exact_uniforms(
            compiled, 1, trial_seed=lambda _trial: int(master_seed), salt=salt
        )[0]
        votes = votes.copy()
        votes[random_positions] = uniforms < compiled.probabilities[random_positions]
    return votes
