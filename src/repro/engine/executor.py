"""Batched trial evaluation of compiled decisions.

One Monte-Carlo trial of a compiled decider runs every node's vote program
(a small Bernoulli circuit, see :mod:`repro.engine.compiler`) and takes the
global AND; ``trials`` trials are evaluated as stacked ``trials × coins``
comparisons against the program thresholds.  Two sampling modes are
provided:

``fast`` (default)
    Each coin-flipping node draws its uniform block from its own
    deterministically-derived :class:`numpy.random.Generator`.  The
    per-trial accept/reject stream differs from the legacy per-node-tape
    path, but its distribution is identical — the equivalence test in
    ``tests/engine`` checks this statistically and via the exact per-trial
    product :attr:`CompiledDecision.deterministic_accept_probability`.
    Per-node generators also make the stream independent of the chunking
    below: the same ``(seed, salt)`` yields the same accept vector for any
    ``max_bytes``.

``exact``
    Bit-for-bit reproduction of the reference path: for trial ``i`` the
    ``k``-th uniform consumed by node ``v``'s program is the ``k``-th draw
    of the tape ``TapeFactory(trial_seed(i), salt).tape_for(identity(v))``,
    exactly the stream :meth:`repro.core.decision.Decider.acceptance_probability`
    and :func:`repro.core.decision.estimate_guarantee` consume.  Only nodes
    whose vote genuinely depends on draws ever read their tape (matching
    the reference voting rules, which return early on deterministic balls),
    so this mode still skips the per-trial tape construction for every
    deterministic node — usually the overwhelming majority.

Chunked execution
-----------------
The fast mode never materialises one giant ``trials × coins`` matrix: the
coin-flipping nodes are processed in **column blocks** whose uniform
working set stays below ``max_bytes`` (default :data:`DEFAULT_MAX_BYTES`,
overridable per call or via ``$REPRO_ENGINE_MAX_BYTES``), carrying the
per-trial accept vector across blocks and short-circuiting the remaining
columns once every trial has rejected.  The exact mode is a per-trial walk
and is memory-bounded by construction; its acceptance path short-circuits
each trial at the first rejecting coin, exactly like the reference loop's
early return (per-node draws are independent, so skipping later coins skips
values that could not affect the conjunction).
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.engine.compiler import ACCEPT, CompiledDecision, VoteProgram
from repro.local.randomness import derive_generator
from repro.obs import get_recorder
from repro.stats import PrecisionTarget, ProbabilityEstimate, sequential_estimate

__all__ = [
    "DEFAULT_MAX_BYTES",
    "accept_vector",
    "vote_matrix",
    "acceptance_probability",
    "exact_single_trial_votes",
    "deterministic_accept_value",
    "AcceptStream",
    "adaptive_acceptance",
]

_MODES = ("fast", "exact")

#: Default bound on the fast mode's uniform working set, in bytes.
DEFAULT_MAX_BYTES = 64 * 1024 * 1024


def _resolve_max_bytes(max_bytes: Optional[int]) -> int:
    if max_bytes is None:
        raw = os.environ.get("REPRO_ENGINE_MAX_BYTES", "")
        try:
            max_bytes = int(raw) if raw else DEFAULT_MAX_BYTES
        except ValueError:
            raise ValueError(
                f"$REPRO_ENGINE_MAX_BYTES must be a plain byte count, got {raw!r}"
            ) from None
    if max_bytes < 1:
        raise ValueError("max_bytes must be positive")
    return max_bytes


def _resolve(
    compiled: CompiledDecision,
    mode: str,
    seed: int,
    trial_seed: Optional[Callable[[int], int]],
    salt: Optional[object],
):
    if mode not in _MODES:
        raise ValueError(f"unknown engine mode {mode!r}; expected one of {_MODES}")
    if salt is None:
        salt = compiled.decider_name
    if trial_seed is None:
        trial_seed = lambda trial: seed + trial  # noqa: E731 - the legacy convention
    return salt, trial_seed


# --------------------------------------------------------------------------- #
# Fast mode: vectorized program evaluation over column blocks
# --------------------------------------------------------------------------- #
def _fast_node_generator(
    compiled: CompiledDecision, position: int, seed: int, salt: object
) -> np.random.Generator:
    """One coin-flipping node's fast-mode generator, derived from the node
    identity — so the stream a node sees is independent of which block (and
    which ``max_bytes``) it lands in."""
    return derive_generator(
        int(seed),
        "engine-fast",
        salt,
        compiled.decider_name,
        int(compiled.identities[position]),
    )


def _evaluate_program_block(program: VoteProgram, uniforms: np.ndarray) -> np.ndarray:
    """Evaluate one program on a ``trials × nodes × draws`` uniform block.

    Runs the lowered decision DAG as a vectorized state machine: program
    nodes are processed in decreasing index order (every edge goes from a
    higher index to a lower one), each moving the trials currently at that
    node along its true/false edge.
    """
    shape = uniforms.shape[:2]
    if program.root < 0:
        return np.full(shape, program.root == ACCEPT, dtype=bool)
    state = np.full(shape, program.root, dtype=np.int32)
    for node in range(program.root, -1, -1):
        at_node = state == node
        if not at_node.any():
            continue
        takes_true = uniforms[..., program.depths[node]] < program.thresholds[node]
        state[at_node] = np.where(
            takes_true[at_node], program.on_true[node], program.on_false[node]
        )
    return state == ACCEPT


def _fast_column_blocks(
    compiled: CompiledDecision,
    positions: np.ndarray,
    trials: int,
    max_bytes: int,
) -> Iterator[Tuple[VoteProgram, List[int]]]:
    """Group the coin-flipping node positions into per-program column blocks
    whose uniform working set stays below ``max_bytes``.

    Positions are grouped by program (not by adjacency in node order), so
    configurations with interleaved ball classes still evaluate each program
    in a handful of vectorized passes.  The resulting streams are
    block-independent anyway: every node draws from its own generator.
    """
    budget_draws = max(1, max_bytes // (8 * max(trials, 1)))
    by_program: "dict[int, List[int]]" = {}
    for position in positions:
        by_program.setdefault(int(compiled.program_ids[position]), []).append(int(position))
    for program_id, group in by_program.items():
        program = compiled.programs[program_id]
        width = max(1, budget_draws // max(program.max_draws, 1))
        for start in range(0, len(group), width):
            yield program, group[start : start + width]


def _fast_votes_for(
    compiled: CompiledDecision,
    program: VoteProgram,
    positions: List[int],
    trials: int,
    seed: int,
    salt: object,
    max_bytes: int,
) -> np.ndarray:
    """One program group's ``trials × len(positions)`` fast-mode votes.

    The trial axis is sliced so the uniform working set also honours
    ``max_bytes`` when a *single* node column at full ``trials`` would
    already exceed it (the high-trial regime the bound exists for).  Each
    node's generator is created once and consumed sequentially across
    slices, so the values equal the unsliced generation exactly
    (``Generator.random`` fills C-order): chunk-invariance holds on both
    axes.
    """
    recorder = get_recorder()
    draws = max(program.max_draws, 1)
    generators = [
        _fast_node_generator(compiled, position, seed, salt) for position in positions
    ]
    votes = np.empty((trials, len(positions)), dtype=bool)
    trial_block = max(1, max_bytes // (8 * len(positions) * draws))
    # Telemetry is observation only: the span times the block, the chunk
    # counter tallies it — neither touches a generator, so the sampled
    # stream (and hence every estimate) is identical with telemetry on/off.
    with recorder.span(
        "engine.chunk",
        mode="fast",
        trials=trials,
        columns=len(positions),
        draws=draws,
        working_set_bytes=min(trials, trial_block) * len(positions) * draws * 8,
    ):
        for start in range(0, trials, trial_block):
            stop = min(trials, start + trial_block)
            recorder.counter("engine.chunks")
            uniforms = np.empty((stop - start, len(positions), draws), dtype=np.float64)
            for column, generator in enumerate(generators):
                uniforms[:, column, :] = generator.random((stop - start, draws))
            votes[start:stop] = _evaluate_program_block(program, uniforms)
    return votes


# --------------------------------------------------------------------------- #
# Exact mode: per-trial walks over the reference tape streams
# --------------------------------------------------------------------------- #
def _exact_walker(
    compiled: CompiledDecision, position: int, master_seed: int, salt: object
) -> Callable[[], float]:
    """Sequential uniforms of one node's reference tape for one trial."""
    generator = derive_generator(
        int(master_seed), salt, int(compiled.identities[position])
    )
    return lambda: float(generator.random())


def _exact_accepts(
    compiled: CompiledDecision,
    trials: int,
    trial_seed: Callable[[int], int],
    salt: object,
) -> np.ndarray:
    """Per-trial global acceptance under the reference tape streams,
    short-circuiting each trial at the first rejecting coin."""
    random_positions = compiled.random_index
    coins = [(int(position), compiled.program_of(position)) for position in random_positions]
    accepted = np.zeros(trials, dtype=bool)
    for trial in range(trials):
        master = int(trial_seed(trial))
        for position, program in coins:
            if not program.walk(_exact_walker(compiled, position, master, salt)):
                break
        else:
            accepted[trial] = True
    return accepted


def _exact_votes(
    compiled: CompiledDecision,
    positions: np.ndarray,
    trials: int,
    trial_seed: Callable[[int], int],
    salt: object,
) -> np.ndarray:
    """The ``trials × len(positions)`` vote matrix of the reference streams
    (no short-circuit: every listed node is evaluated in every trial)."""
    votes = np.empty((trials, len(positions)), dtype=bool)
    programs = [compiled.program_of(position) for position in positions]
    for trial in range(trials):
        master = int(trial_seed(trial))
        for column, (position, program) in enumerate(zip(positions, programs)):
            votes[trial, column] = program.walk(
                _exact_walker(compiled, position, master, salt)
            )
    return votes


# --------------------------------------------------------------------------- #
# Public entry points
# --------------------------------------------------------------------------- #
def accept_vector(
    compiled: CompiledDecision,
    trials: int,
    seed: int = 0,
    mode: str = "fast",
    trial_seed: Optional[Callable[[int], int]] = None,
    salt: Optional[object] = None,
    max_bytes: Optional[int] = None,
) -> np.ndarray:
    """Per-trial global acceptance (``all`` over the node votes).

    Returns a boolean vector of length ``trials``.  Only the coin-flipping
    nodes are sampled; a deterministic reject anywhere short-circuits the
    whole matrix to ``False``.  ``max_bytes`` bounds the fast mode's uniform
    working set (see the module docstring).
    """
    if trials < 1:
        raise ValueError("trials must be positive")
    salt, trial_seed = _resolve(compiled, mode, seed, trial_seed, salt)
    max_bytes = _resolve_max_bytes(max_bytes)
    if compiled.always_rejects:
        return np.zeros(trials, dtype=bool)
    random_positions = compiled.random_index
    if len(random_positions) == 0:
        return np.ones(trials, dtype=bool)
    recorder = get_recorder()
    with recorder.span(
        "engine.execute",
        op="accept_vector",
        mode=mode,
        trials=trials,
        nodes=compiled.n_nodes,
        random_nodes=len(random_positions),
        max_bytes=max_bytes,
    ) as span:
        if mode == "exact":
            recorder.counter("engine.chunks")
            return _exact_accepts(compiled, trials, trial_seed, salt)
        accepted = np.ones(trials, dtype=bool)
        blocks = 0
        for program, positions in _fast_column_blocks(
            compiled, random_positions, trials, max_bytes
        ):
            if not accepted.any():  # short-circuit carry: everything rejected
                span.annotate(short_circuited=True)
                break
            votes = _fast_votes_for(
                compiled, program, positions, trials, seed, salt, max_bytes
            )
            accepted &= votes.all(axis=1)
            blocks += 1
        span.annotate(column_blocks=blocks)
    return accepted


def vote_matrix(
    compiled: CompiledDecision,
    trials: int,
    seed: int = 0,
    mode: str = "fast",
    trial_seed: Optional[Callable[[int], int]] = None,
    salt: Optional[object] = None,
    max_bytes: Optional[int] = None,
) -> np.ndarray:
    """The full ``trials × nodes`` boolean vote matrix.

    Use :func:`accept_vector` when only global acceptance is needed — it
    avoids materialising the deterministic columns and short-circuits.  This
    entry point serves callers that reduce over *subsets* of the node votes
    (the single-trial case is :func:`exact_single_trial_votes`, which the
    derandomization loops use for the Claim 4 far-acceptance events).
    """
    if trials < 1:
        raise ValueError("trials must be positive")
    salt, trial_seed = _resolve(compiled, mode, seed, trial_seed, salt)
    max_bytes = _resolve_max_bytes(max_bytes)
    votes = np.broadcast_to(compiled.probabilities >= 1.0, (trials, compiled.n_nodes)).copy()
    random_positions = compiled.random_index
    if len(random_positions) == 0:
        return votes
    recorder = get_recorder()
    with recorder.span(
        "engine.execute",
        op="vote_matrix",
        mode=mode,
        trials=trials,
        nodes=compiled.n_nodes,
        random_nodes=len(random_positions),
        max_bytes=max_bytes,
    ):
        if mode == "exact":
            recorder.counter("engine.chunks")
            votes[:, random_positions] = _exact_votes(
                compiled, random_positions, trials, trial_seed, salt
            )
            return votes
        for program, positions in _fast_column_blocks(
            compiled, random_positions, trials, max_bytes
        ):
            votes[:, positions] = _fast_votes_for(
                compiled, program, positions, trials, seed, salt, max_bytes
            )
    return votes


def acceptance_probability(
    compiled: CompiledDecision,
    trials: int,
    seed: int = 0,
    mode: str = "fast",
    trial_seed: Optional[Callable[[int], int]] = None,
    salt: Optional[object] = None,
    max_bytes: Optional[int] = None,
) -> float:
    """Monte-Carlo Pr[all nodes accept] over ``trials`` batched trials."""
    accepted = accept_vector(
        compiled,
        trials,
        seed=seed,
        mode=mode,
        trial_seed=trial_seed,
        salt=salt,
        max_bytes=max_bytes,
    )
    return float(np.count_nonzero(accepted)) / trials


def deterministic_accept_value(compiled: CompiledDecision) -> Optional[bool]:
    """The global accept value when it is structurally determined.

    ``False`` when some node's program is constantly rejecting, ``True``
    when every program is constantly accepting, ``None`` when acceptance
    genuinely depends on draws.  The adaptive estimators use this to report
    exact degenerate estimates instead of sampling a constant.
    """
    if compiled.always_rejects:
        return False
    if len(compiled.random_index) == 0:
        return True
    return None


class AcceptStream:
    """A resumable per-trial acceptance stream over a compiled decision.

    ``sample(count)`` returns the accept vector of the **next** ``count``
    trials; the concatenation of successive samples is bit-identical to one
    :func:`accept_vector` call with the total trial count, in both modes:

    * exact mode derives every trial from its own master seed
      (``trial_seed(t)``), so a batch starting at offset ``o`` simply walks
      trials ``o .. o+count-1``;
    * fast mode holds every coin-flipping node's generator open across
      batches — each node's uniforms arrive in ``(trial, draw)`` order
      regardless of batching, exactly the chunk-invariance the fixed-trial
      path already guarantees for ``max_bytes`` slicing.

    This is what lets a sequential-stopping rule decide *after* a chunk
    whether to continue, without perturbing a single sampled value.
    """

    def __init__(
        self,
        compiled: CompiledDecision,
        seed: int = 0,
        mode: str = "fast",
        trial_seed: Optional[Callable[[int], int]] = None,
        salt: Optional[object] = None,
        max_bytes: Optional[int] = None,
    ) -> None:
        self.compiled = compiled
        self.mode = mode
        self._salt, self._trial_seed = _resolve(compiled, mode, seed, trial_seed, salt)
        self._max_bytes = _resolve_max_bytes(max_bytes)
        self._offset = 0
        self._constant = deterministic_accept_value(compiled)
        self._groups: List[Tuple[VoteProgram, List[int]]] = []
        self._generators: Dict[int, np.random.Generator] = {}
        if self._constant is None and mode == "fast":
            by_program: "Dict[int, List[int]]" = {}
            for position in compiled.random_index:
                by_program.setdefault(
                    int(compiled.program_ids[position]), []
                ).append(int(position))
            self._groups = [
                (compiled.programs[program_id], group)
                for program_id, group in by_program.items()
            ]
            self._generators = {
                position: _fast_node_generator(compiled, position, seed, self._salt)
                for _, group in self._groups
                for position in group
            }

    @property
    def trials_sampled(self) -> int:
        return self._offset

    def sample(self, count: int) -> np.ndarray:
        """The accept vector of the next ``count`` trials."""
        if count < 1:
            raise ValueError("count must be positive")
        start = self._offset
        self._offset += count
        if self._constant is not None:
            return np.full(count, self._constant, dtype=bool)
        recorder = get_recorder()
        with recorder.span(
            "engine.stream_sample", mode=self.mode, trials=count, offset=start
        ):
            if self.mode == "exact":
                recorder.counter("engine.chunks")
                return _exact_accepts(
                    self.compiled,
                    count,
                    lambda trial: self._trial_seed(start + trial),
                    self._salt,
                )
            accepted = np.ones(count, dtype=bool)
            for program, positions in self._groups:
                draws = max(program.max_draws, 1)
                votes = np.empty((count, len(positions)), dtype=bool)
                trial_block = max(1, self._max_bytes // (8 * len(positions) * draws))
                for lo in range(0, count, trial_block):
                    hi = min(count, lo + trial_block)
                    recorder.counter("engine.chunks")
                    uniforms = np.empty((hi - lo, len(positions), draws), dtype=np.float64)
                    for column, position in enumerate(positions):
                        uniforms[:, column, :] = self._generators[position].random(
                            (hi - lo, draws)
                        )
                    votes[lo:hi] = _evaluate_program_block(program, uniforms)
                # No cross-group short-circuit: every node's generator must
                # advance exactly ``count`` trials per batch, or the next batch
                # would read a shifted stream and break chunk invariance.
                accepted &= votes.all(axis=1)
            return accepted


def adaptive_acceptance(
    compiled: CompiledDecision,
    target: PrecisionTarget,
    seed: int = 0,
    mode: str = "fast",
    trial_seed: Optional[Callable[[int], int]] = None,
    salt: Optional[object] = None,
    max_bytes: Optional[int] = None,
) -> ProbabilityEstimate:
    """Estimate Pr[all accept] until ``target`` is met (sequential stopping).

    The trial stream is the same chunk-invariant stream the fixed-trial
    :func:`acceptance_probability` consumes, so stopping after ``k`` trials
    reports exactly the ``k``-trial fixed estimate.  Structurally constant
    decisions return the exact degenerate estimate without sampling.
    """
    constant = deterministic_accept_value(compiled)
    if constant is not None:
        return ProbabilityEstimate.exact(constant, confidence=target.confidence)
    stream = AcceptStream(
        compiled, seed=seed, mode=mode, trial_seed=trial_seed, salt=salt, max_bytes=max_bytes
    )
    return sequential_estimate(
        target, lambda count: int(np.count_nonzero(stream.sample(count)))
    )


def exact_single_trial_votes(
    compiled: CompiledDecision,
    master_seed: int,
    salt: object,
) -> np.ndarray:
    """One trial's per-node votes under the reference tape streams.

    Equivalent to ``decider.decide(configuration,
    tape_factory=TapeFactory(master_seed, salt))`` restricted to the vote
    booleans, and bit-for-bit identical to it for compilable deciders.
    """
    votes = compiled.probabilities >= 1.0
    random_positions = compiled.random_index
    if len(random_positions):
        votes = votes.copy()
        votes[random_positions] = _exact_votes(
            compiled,
            random_positions,
            1,
            trial_seed=lambda _trial: int(master_seed),
            salt=salt,
        )[0]
    return votes
